#include "isa/instruction.h"

namespace kivati {

unsigned EncodedLength(const Instruction& instr) {
  switch (instr.op) {
    case Opcode::kNop:
    case Opcode::kHalt:
    case Opcode::kRet:
    case Opcode::kAClear:
      return 1;
    case Opcode::kPush:
    case Opcode::kPop:
    case Opcode::kSyscall:
    case Opcode::kRepMovs:
      return 2;
    case Opcode::kMov:
    case Opcode::kAdd:
    case Opcode::kSub:
    case Opcode::kMul:
    case Opcode::kDiv:
    case Opcode::kMod:
    case Opcode::kAnd:
    case Opcode::kOr:
    case Opcode::kXor:
    case Opcode::kCmpEq:
    case Opcode::kCmpNe:
    case Opcode::kCmpLt:
    case Opcode::kCmpLe:
      return 3;
    case Opcode::kXchg:
      return 4;
    case Opcode::kLoadImm:
      // Short form for 32-bit immediates, long form otherwise (movabs).
      return (instr.imm >= INT32_MIN && instr.imm <= INT32_MAX) ? 5 : 10;
    case Opcode::kAddI:
      return 5;
    case Opcode::kJmp:
    case Opcode::kBnz:
    case Opcode::kBz:
    case Opcode::kCall:
      return 5;
    case Opcode::kLoad:
    case Opcode::kStore:
    case Opcode::kPushM:
    case Opcode::kCallInd:
      // Register-indirect with a short offset encodes shorter.
      return (instr.mem.offset >= -128 && instr.mem.offset <= 127) ? 4 : 7;
    case Opcode::kMovM:
      return 8;
    case Opcode::kABegin:
      return 12;
    case Opcode::kAEnd:
      return 6;
  }
  return 1;
}

bool ReadsMemory(Opcode op) {
  switch (op) {
    case Opcode::kRepMovs:
    case Opcode::kLoad:
    case Opcode::kMovM:
    case Opcode::kXchg:
    case Opcode::kPushM:
    case Opcode::kCallInd:
    case Opcode::kPop:
    case Opcode::kRet:
      return true;
    default:
      return false;
  }
}

bool WritesMemory(Opcode op) {
  switch (op) {
    case Opcode::kRepMovs:
    case Opcode::kStore:
    case Opcode::kMovM:
    case Opcode::kXchg:
    case Opcode::kPush:
    case Opcode::kPushM:
    case Opcode::kCall:
    case Opcode::kCallInd:
      return true;
    default:
      return false;
  }
}

std::int64_t StackDelta(Opcode op) {
  switch (op) {
    case Opcode::kPush:
    case Opcode::kPushM:
    case Opcode::kCall:
    case Opcode::kCallInd:
      return -8;
    case Opcode::kPop:
    case Opcode::kRet:
      return 8;
    default:
      return 0;
  }
}

const char* ToString(Opcode op) {
  switch (op) {
    case Opcode::kNop: return "nop";
    case Opcode::kHalt: return "halt";
    case Opcode::kLoadImm: return "li";
    case Opcode::kMov: return "mov";
    case Opcode::kLoad: return "ld";
    case Opcode::kStore: return "st";
    case Opcode::kMovM: return "movm";
    case Opcode::kXchg: return "xchg";
    case Opcode::kAdd: return "add";
    case Opcode::kSub: return "sub";
    case Opcode::kMul: return "mul";
    case Opcode::kDiv: return "div";
    case Opcode::kMod: return "mod";
    case Opcode::kAnd: return "and";
    case Opcode::kOr: return "or";
    case Opcode::kXor: return "xor";
    case Opcode::kAddI: return "addi";
    case Opcode::kCmpEq: return "cmpeq";
    case Opcode::kCmpNe: return "cmpne";
    case Opcode::kCmpLt: return "cmplt";
    case Opcode::kCmpLe: return "cmple";
    case Opcode::kJmp: return "jmp";
    case Opcode::kBnz: return "bnz";
    case Opcode::kBz: return "bz";
    case Opcode::kCall: return "call";
    case Opcode::kCallInd: return "calli";
    case Opcode::kRet: return "ret";
    case Opcode::kPush: return "push";
    case Opcode::kPushM: return "pushm";
    case Opcode::kPop: return "pop";
    case Opcode::kRepMovs: return "rep movs";
    case Opcode::kSyscall: return "syscall";
    case Opcode::kABegin: return "begin_atomic";
    case Opcode::kAEnd: return "end_atomic";
    case Opcode::kAClear: return "clear_ar";
  }
  return "?";
}

const char* ToString(Syscall call) {
  switch (call) {
    case Syscall::kExit: return "exit";
    case Syscall::kSpawn: return "spawn";
    case Syscall::kJoin: return "join";
    case Syscall::kYield: return "yield";
    case Syscall::kSleep: return "sleep";
    case Syscall::kIo: return "io";
    case Syscall::kMark: return "mark";
    case Syscall::kNow: return "now";
  }
  return "?";
}

}  // namespace kivati
