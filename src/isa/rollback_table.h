// The paper's binary pre-processing pass (§3.3).
//
// x86 watchpoints trap *after* the accessing instruction retires, and x86
// instructions are variable length, so the kernel cannot recover the faulting
// instruction's PC by subtracting a constant. Kivati pre-scans the binary and
// records, for every instruction that accesses memory, the PC of the
// instruction that immediately follows it. At trap time, the table maps the
// post-trap PC back to the accessing instruction.
//
// The one exception is a call instruction whose operand is an indirect
// memory pointer: after the call the PC is the callee's first instruction,
// not the successor of the call. The table therefore also records every
// function entry PC; the trap handler detects this case and recovers the
// call site from the return address on the stack.
#ifndef KIVATI_ISA_ROLLBACK_TABLE_H_
#define KIVATI_ISA_ROLLBACK_TABLE_H_

#include <optional>
#include <unordered_map>
#include <unordered_set>

#include "isa/program.h"

namespace kivati {

class RollbackTable {
 public:
  // Scans `program` and records all memory-accessing instructions.
  explicit RollbackTable(const Program& program);

  // Maps the PC following a memory-accessing instruction back to that
  // instruction's PC. Returns nullopt if `next_pc` does not follow any
  // memory-accessing instruction (which means the trap PC needs the
  // function-entry special case, or the trap is spurious).
  std::optional<ProgramCounter> PrevAccessingPc(ProgramCounter next_pc) const;

  // True if `pc` is the first instruction of some subroutine — i.e. control
  // arrived via a call, and the call site must be recovered from the return
  // address on the stack.
  bool IsFunctionEntry(ProgramCounter pc) const;

  // Number of memory-accessing instructions recorded (for tests/stats).
  std::size_t entries() const { return next_to_prev_.size(); }

 private:
  std::unordered_map<ProgramCounter, ProgramCounter> next_to_prev_;
  std::unordered_set<ProgramCounter> function_entries_;
};

}  // namespace kivati

#endif  // KIVATI_ISA_ROLLBACK_TABLE_H_
