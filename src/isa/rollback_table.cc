#include "isa/rollback_table.h"

namespace kivati {

RollbackTable::RollbackTable(const Program& program) {
  for (std::size_t i = 0; i < program.size(); ++i) {
    const Instruction& instr = program.At(i);
    if (!AccessesMemory(instr.op)) {
      continue;
    }
    const ProgramCounter pc = program.PcOf(i);
    const ProgramCounter next = pc + EncodedLength(instr);
    next_to_prev_.emplace(next, pc);
  }
  for (const auto& f : program.functions()) {
    function_entries_.insert(f.entry);
  }
}

std::optional<ProgramCounter> RollbackTable::PrevAccessingPc(ProgramCounter next_pc) const {
  auto it = next_to_prev_.find(next_pc);
  if (it == next_to_prev_.end()) {
    return std::nullopt;
  }
  return it->second;
}

bool RollbackTable::IsFunctionEntry(ProgramCounter pc) const {
  return function_entries_.contains(pc);
}

}  // namespace kivati
