#include "isa/disasm.h"

#include <cinttypes>
#include <cstdio>
#include <sstream>

namespace kivati {
namespace {

std::string RegName(RegId reg) {
  if (reg == kRegSp) {
    return "sp";
  }
  if (reg == kNoReg) {
    return "r?";
  }
  return "r" + std::to_string(static_cast<int>(reg));
}

std::string MemName(const MemOperand& mem) {
  char buf[64];
  if (mem.base == kNoReg) {
    std::snprintf(buf, sizeof(buf), "[0x%" PRIx64 "]", static_cast<std::uint64_t>(mem.offset));
  } else if (mem.offset == 0) {
    std::snprintf(buf, sizeof(buf), "[%s]", RegName(mem.base).c_str());
  } else {
    std::snprintf(buf, sizeof(buf), "[%s%+" PRId64 "]", RegName(mem.base).c_str(), mem.offset);
  }
  return buf;
}

}  // namespace

std::string Disassemble(const Instruction& instr) {
  std::ostringstream out;
  out << ToString(instr.op);
  switch (instr.op) {
    case Opcode::kLoadImm:
      out << " " << RegName(instr.rd) << ", " << instr.imm;
      break;
    case Opcode::kMov:
      out << " " << RegName(instr.rd) << ", " << RegName(instr.rs1);
      break;
    case Opcode::kLoad:
      out << " " << RegName(instr.rd) << ", " << MemName(instr.mem) << " (" << instr.size << "B)";
      break;
    case Opcode::kStore:
      out << " " << MemName(instr.mem) << ", " << RegName(instr.rs1) << " (" << instr.size << "B)";
      break;
    case Opcode::kMovM:
      out << " " << MemName(instr.mem) << ", " << MemName(instr.mem2) << " (" << instr.size
          << "B)";
      break;
    case Opcode::kXchg:
      out << " " << RegName(instr.rd) << ", " << MemName(instr.mem) << ", " << RegName(instr.rs1);
      break;
    case Opcode::kAdd:
    case Opcode::kSub:
    case Opcode::kMul:
    case Opcode::kDiv:
    case Opcode::kMod:
    case Opcode::kAnd:
    case Opcode::kOr:
    case Opcode::kXor:
    case Opcode::kCmpEq:
    case Opcode::kCmpNe:
    case Opcode::kCmpLt:
    case Opcode::kCmpLe:
      out << " " << RegName(instr.rd) << ", " << RegName(instr.rs1) << ", "
          << RegName(instr.rs2);
      break;
    case Opcode::kAddI:
      out << " " << RegName(instr.rd) << ", " << RegName(instr.rs1) << ", " << instr.imm;
      break;
    case Opcode::kJmp:
    case Opcode::kCall:
      out << " 0x" << std::hex << instr.target;
      break;
    case Opcode::kBnz:
    case Opcode::kBz:
      out << " " << RegName(instr.rs1) << ", 0x" << std::hex << instr.target;
      break;
    case Opcode::kCallInd:
    case Opcode::kPushM:
      out << " " << MemName(instr.mem);
      break;
    case Opcode::kPush:
      out << " " << RegName(instr.rs1);
      break;
    case Opcode::kPop:
      out << " " << RegName(instr.rd);
      break;
    case Opcode::kSyscall:
      out << " " << ToString(static_cast<Syscall>(instr.imm));
      break;
    case Opcode::kABegin:
      out << " ar=" << instr.ar_id << ", " << MemName(instr.mem) << ", " << instr.size
          << "B, watch=" << ToString(instr.watch) << ", first=" << ToString(instr.local_first);
      break;
    case Opcode::kAEnd:
      out << " ar=" << instr.ar_id << ", second=" << ToString(instr.local_second);
      break;
    default:
      break;
  }
  return out.str();
}

std::string DisassembleProgram(const Program& program) {
  std::ostringstream out;
  const FunctionInfo* current = nullptr;
  for (std::size_t i = 0; i < program.size(); ++i) {
    const ProgramCounter pc = program.PcOf(i);
    const FunctionInfo* function = program.FunctionAt(pc);
    if (function != nullptr && function != current) {
      out << function->name << ":\n";
      current = function;
    }
    char pc_buf[32];
    std::snprintf(pc_buf, sizeof(pc_buf), "  %06" PRIx64 ":  ", pc);
    out << pc_buf << Disassemble(program.At(i)) << "\n";
  }
  return out.str();
}

}  // namespace kivati
