// Textual disassembly of simulated programs, for debugging and examples.
#ifndef KIVATI_ISA_DISASM_H_
#define KIVATI_ISA_DISASM_H_

#include <string>

#include "isa/program.h"

namespace kivati {

// One-line rendering of a single instruction, e.g. "ld r3, [r1+16] (4B)".
std::string Disassemble(const Instruction& instr);

// Full listing with PCs and function headers.
std::string DisassembleProgram(const Program& program);

}  // namespace kivati

#endif  // KIVATI_ISA_DISASM_H_
