// Program container and assembler-style builder.
//
// A Program is an ordered list of variable-length instructions with byte
// PCs, plus function metadata (name, entry PC) used by the rollback table's
// call-instruction special case and by the spawn syscall.
#ifndef KIVATI_ISA_PROGRAM_H_
#define KIVATI_ISA_PROGRAM_H_

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "isa/instruction.h"

namespace kivati {

struct FunctionInfo {
  std::string name;
  ProgramCounter entry = 0;
  // Index range [first_index, end_index) into the instruction list.
  std::size_t first_index = 0;
  std::size_t end_index = 0;
};

class Program {
 public:
  std::size_t size() const { return instrs_.size(); }
  const Instruction& At(std::size_t index) const { return instrs_[index]; }
  ProgramCounter PcOf(std::size_t index) const { return pcs_[index]; }

  // Index of the instruction whose first byte is at `pc`, if any. O(1): a
  // dense PC-indexed table (the text segment is small and contiguous), built
  // once at Build() time. This sits on the interpreter's per-instruction
  // dispatch path (docs/performance.md).
  std::optional<std::size_t> IndexOfPc(ProgramCounter pc) const {
    if (pc >= pc_slot_.size()) {
      return std::nullopt;
    }
    const std::uint32_t slot = pc_slot_[static_cast<std::size_t>(pc)];
    if (slot == 0) {
      return std::nullopt;
    }
    return slot - 1;
  }

  // Encoded length of instruction `index`, cached at Build() time (equals
  // EncodedLength(At(index)); see isa_test).
  unsigned LengthAt(std::size_t index) const { return lengths_[index]; }

  // One past the last instruction byte.
  ProgramCounter text_end() const { return text_end_; }

  const std::vector<FunctionInfo>& functions() const { return functions_; }
  const FunctionInfo* FindFunction(const std::string& name) const;
  // The function containing `pc`, if any.
  const FunctionInfo* FunctionAt(ProgramCounter pc) const;

 private:
  friend class ProgramBuilder;

  std::vector<Instruction> instrs_;
  std::vector<ProgramCounter> pcs_;
  // pc -> instruction index + 1; 0 marks mid-instruction bytes. Sized
  // text_end_ (one entry per text byte).
  std::vector<std::uint32_t> pc_slot_;
  std::vector<std::uint8_t> lengths_;  // EncodedLength per instruction
  std::vector<FunctionInfo> functions_;
  // Function lookups: by name (names are unique — Bind rejects redefinition)
  // and by entry PC (non-empty functions, sorted; bodies are emitted
  // sequentially so their PC ranges are disjoint).
  std::unordered_map<std::string, std::size_t> function_by_name_;
  std::vector<std::size_t> functions_by_pc_;
  ProgramCounter text_end_ = 0;
};

// Two-pass builder: emit instructions with symbolic labels, then Build()
// assigns byte PCs and patches branch/call targets.
class ProgramBuilder {
 public:
  using Label = std::int32_t;

  ProgramBuilder();

  // Creates a fresh unbound label.
  Label NewLabel();
  // Binds `label` to the next emitted instruction.
  void Bind(Label label);

  // Starts/ends a function body. Functions may be referenced by name before
  // they are defined. EndFunction does not emit a return; callers emit their
  // own epilogue (the compiler adds clear_ar + ret).
  void BeginFunction(const std::string& name);
  void EndFunction();

  // Label naming the entry of `function` (creating it if needed).
  Label FunctionEntry(const std::string& name);

  // Appends `instr`; returns its index.
  std::size_t Emit(Instruction instr);
  // Appends a control-transfer instruction whose target is `label`.
  std::size_t EmitBranch(Instruction instr, Label label);
  // Loads the entry PC of `function` into `rd` (patched at Build time); used
  // to pass function addresses to the spawn syscall.
  void LoadFunctionAddress(RegId rd, const std::string& function);

  // --- Convenience emitters -------------------------------------------------
  void Nop() { Emit({.op = Opcode::kNop}); }
  void Halt() { Emit({.op = Opcode::kHalt}); }
  void LoadImm(RegId rd, std::int64_t imm) {
    Emit({.op = Opcode::kLoadImm, .rd = rd, .imm = imm});
  }
  void Mov(RegId rd, RegId rs) { Emit({.op = Opcode::kMov, .rd = rd, .rs1 = rs}); }
  void Load(RegId rd, MemOperand mem, unsigned size = 8) {
    Emit({.op = Opcode::kLoad, .rd = rd, .mem = mem, .size = size});
  }
  void Store(MemOperand mem, RegId rs, unsigned size = 8) {
    Emit({.op = Opcode::kStore, .rs1 = rs, .mem = mem, .size = size});
  }
  void MovM(MemOperand dst, MemOperand src, unsigned size = 8) {
    Emit({.op = Opcode::kMovM, .mem = dst, .mem2 = src, .size = size});
  }
  void Xchg(RegId rd, MemOperand mem, RegId rs, unsigned size = 8) {
    Emit({.op = Opcode::kXchg, .rd = rd, .rs1 = rs, .mem = mem, .size = size});
  }
  void Alu(Opcode op, RegId rd, RegId rs1, RegId rs2) {
    Emit({.op = op, .rd = rd, .rs1 = rs1, .rs2 = rs2});
  }
  void AddI(RegId rd, RegId rs1, std::int64_t imm) {
    Emit({.op = Opcode::kAddI, .rd = rd, .rs1 = rs1, .imm = imm});
  }
  void Jmp(Label label) { EmitBranch({.op = Opcode::kJmp}, label); }
  void Bnz(RegId rs, Label label) { EmitBranch({.op = Opcode::kBnz, .rs1 = rs}, label); }
  void Bz(RegId rs, Label label) { EmitBranch({.op = Opcode::kBz, .rs1 = rs}, label); }
  void Call(const std::string& function) {
    EmitBranch({.op = Opcode::kCall}, FunctionEntry(function));
  }
  void CallInd(MemOperand mem) { Emit({.op = Opcode::kCallInd, .mem = mem}); }
  void Ret() { Emit({.op = Opcode::kRet}); }
  void Push(RegId rs) { Emit({.op = Opcode::kPush, .rs1 = rs}); }
  void PushM(MemOperand mem, unsigned size = 8) {
    Emit({.op = Opcode::kPushM, .mem = mem, .size = size});
  }
  void Pop(RegId rd) { Emit({.op = Opcode::kPop, .rd = rd}); }
  // rd = word count, rs1 = source address, rs2 = destination address.
  void RepMovs(RegId count, RegId src, RegId dst) {
    Emit({.op = Opcode::kRepMovs, .rd = count, .rs1 = src, .rs2 = dst});
  }
  void SyscallOp(Syscall call) {
    Emit({.op = Opcode::kSyscall, .imm = static_cast<std::int64_t>(call)});
  }
  void BeginAtomic(ArId ar, MemOperand mem, unsigned size, WatchType watch, AccessType first,
                   WatchType joint = WatchType::kNone) {
    Emit({.op = Opcode::kABegin,
          .mem = mem,
          .size = size,
          .ar_id = ar,
          .watch = watch,
          .local_first = first,
          .joint = joint});
  }
  void EndAtomic(ArId ar, AccessType second) {
    Emit({.op = Opcode::kAEnd, .ar_id = ar, .local_second = second});
  }
  void ClearAr() { Emit({.op = Opcode::kAClear}); }

  // Assigns PCs, patches every label reference, finalizes function ranges.
  // The builder must not be reused afterwards.
  Program Build();

 private:
  struct Pending {
    std::size_t instr_index;
    Label label;
    bool into_imm = false;  // patch the immediate instead of the branch target
  };

  std::vector<Instruction> instrs_;
  std::vector<std::int64_t> label_to_index_;  // -1 while unbound
  std::vector<Pending> pending_;
  std::unordered_map<std::string, Label> function_labels_;
  std::vector<FunctionInfo> functions_;
  std::int64_t open_function_ = -1;
  bool built_ = false;
};

}  // namespace kivati

#endif  // KIVATI_ISA_PROGRAM_H_
