// The atomicity-violation bug corpus (paper §4.2, Table 6).
//
// Eleven bugs drawn from the bug databases of Apache, Mozilla NSS and MySQL
// are modelled as mini-C workloads. Each bug is an instance of one of four
// interleaving patterns (the paper's Figure 2), with per-bug trigger rates
// calibrated so the relative detection-time ordering of Table 6 reproduces:
// frequent-trigger bugs manifest quickly even in prevention mode, while the
// rarest ones only surface under bug-finding pauses.
//
//   kCheckThenSet   R..W  local check-then-update, remote write  (lost update)
//   kUpdateThenUse  W..R  local update-then-use, remote write
//   kDirtyRead      W..W  local two-step update, remote read sees the middle
//   kDoubleRead     R..R  local double read, remote write between
#ifndef KIVATI_APPS_BUGS_H_
#define KIVATI_APPS_BUGS_H_

#include <string>
#include <vector>

#include "apps/common.h"

namespace kivati {
namespace apps {

enum class BugPattern {
  kCheckThenSet,
  kUpdateThenUse,
  kDirtyRead,
  kDoubleRead,
};

struct BugInfo {
  std::string app;       // "Apache", "NSS", "MySQL"
  std::string id;        // bug-database id, e.g. "44402"
  BugPattern pattern;
  // Trigger calibration: the local thread enters the buggy region when
  // (rng & gate_mask) == 0; the remote thread touches the variable when
  // (rng & touch_mask) == 0; window_work pads the region's vulnerable
  // window.
  int gate_mask = 255;
  int touch_mask = 63;
  int window_work = 30;

  // The shared variable name in the generated source, e.g. "nss341323_v".
  std::string variable() const;
};

// The full corpus, in Table 6's row order.
const std::vector<BugInfo>& BugCorpus();

// Builds the workload for one bug: a local thread that repeatedly applies
// the triggering input, a remote thread that makes the interleaving access,
// and a noise thread exercising unrelated shared state. `prune` lets the
// soundness suite compare runs with conflict-analysis pruning on and off.
App MakeBugApp(const BugInfo& bug, bool prune = true);

}  // namespace apps
}  // namespace kivati

#endif  // KIVATI_APPS_BUGS_H_
