// The atomicity-violation bug corpus (paper §4.2, Table 6).
//
// Eleven bugs drawn from the bug databases of Apache, Mozilla NSS and MySQL
// are modelled as mini-C workloads. Each bug is an instance of one of four
// interleaving patterns (the paper's Figure 2), with per-bug trigger rates
// calibrated so the relative detection-time ordering of Table 6 reproduces:
// frequent-trigger bugs manifest quickly even in prevention mode, while the
// rarest ones only surface under bug-finding pauses.
//
//   kCheckThenSet   R..W  local check-then-update, remote write  (lost update)
//   kUpdateThenUse  W..R  local update-then-use, remote write
//   kDirtyRead      W..W  local two-step update, remote read sees the middle
//   kDoubleRead     R..R  local double read, remote write between
//
// The multi-variable corpus (MultiVarBugCorpus) adds four MUVI-style bugs
// where the atomicity requirement spans TWO correlated variables (a primary
// `v` and an aux `v_aux`). Each is constructed so the single-variable
// pipeline provably misses it — the remote side never performs an access
// any single-variable watch type would trap — while the correlation pass
// (analysis/correlation.h) fuses the pair into one multi-variable region
// whose joint mask convicts it:
//
//   kPairDesync  len/buf desync: local refills buf then bumps len; a remote
//                reader sees the new buf with the old len (or vice versa).
//   kFlagPair    flag/data check-then-act: local checks ready then consumes
//                data; a remote producer overwrites data after the check.
//   kPairSwap    paired-pointer swap: local swaps head/spare; a remote
//                reader sees the transient state where both are equal.
//   kStatPair    stat-counter pair: hits/total bumped together; a remote
//                reader computes a ratio from a torn pair.
#ifndef KIVATI_APPS_BUGS_H_
#define KIVATI_APPS_BUGS_H_

#include <string>
#include <vector>

#include "apps/common.h"

namespace kivati {
namespace apps {

enum class BugPattern {
  kCheckThenSet,
  kUpdateThenUse,
  kDirtyRead,
  kDoubleRead,
  // Multi-variable patterns (correlated v / v_aux pair).
  kPairDesync,
  kFlagPair,
  kPairSwap,
  kStatPair,
};

struct BugInfo {
  std::string app;       // "Apache", "NSS", "MySQL"
  std::string id;        // bug-database id, e.g. "44402"
  BugPattern pattern;
  // Trigger calibration: the local thread enters the buggy region when
  // (rng & gate_mask) == 0; the remote thread touches the variable when
  // (rng & touch_mask) == 0; window_work pads the region's vulnerable
  // window.
  int gate_mask = 255;
  int touch_mask = 63;
  int window_work = 30;

  // The shared variable name in the generated source, e.g. "nss341323_v".
  std::string variable() const;
  // True for the multi-variable patterns (kPairDesync and later).
  bool multivar() const;
  // The correlated partner variable, variable() + "_aux" (multivar only).
  std::string aux_variable() const;
};

// The full corpus, in Table 6's row order.
const std::vector<BugInfo>& BugCorpus();

// The four multi-variable bugs. Kept separate from BugCorpus() so the
// Table-6 experiments and their baselines are untouched.
const std::vector<BugInfo>& MultiVarBugCorpus();

// Builds the workload for one bug: a local thread that repeatedly applies
// the triggering input, a remote thread that makes the interleaving access,
// and a noise thread exercising unrelated shared state. `prune` lets the
// soundness suite compare runs with conflict-analysis pruning on and off;
// `correlate` gates the correlated-variable fusion pass (--no-correlate),
// which is what makes the multi-variable corpus detectable at all.
App MakeBugApp(const BugInfo& bug, bool prune = true, bool correlate = true);

}  // namespace apps
}  // namespace kivati

#endif  // KIVATI_APPS_BUGS_H_
