// The five performance workloads of the paper's Table 2, as synthetic
// mini-C applications:
//
//   NSS      — Mozilla security library: lock-protected session/cert state,
//              double-checked initialization, unprotected stat counters.
//   VLC      — media player: decoder/renderer threads around a lock-
//              protected FIFO, unprotected frame counters.
//   Webstone — Apache web server under a request generator: worker pool,
//              per-request I/O + parsing, shared log buffer with an
//              unprotected length field, latency marks (tag 1).
//   TPC-W    — MySQL under a transactional web mix: row locks, unprotected
//              hot counters, binlog append, latency marks (tag 2).
//   SPEC OMP — data-parallel compute: disjoint array chunks, spin barriers
//              (the paper's Figure-5 "required violation" pattern), and a
//              lock-protected reduction.
//
// Every factory returns the compiled workload plus its compilation
// artifacts; `LoadScale` controls thread count and iteration counts.
#ifndef KIVATI_APPS_WORKLOADS_H_
#define KIVATI_APPS_WORKLOADS_H_

#include <vector>

#include "apps/common.h"

namespace kivati {
namespace apps {

App MakeNss(const LoadScale& scale = {});
App MakeVlc(const LoadScale& scale = {});
App MakeWebstone(const LoadScale& scale = {});
App MakeTpcw(const LoadScale& scale = {});
App MakeSpecOmp(const LoadScale& scale = {});

// All five, in the paper's row order.
std::vector<App> AllPerformanceApps(const LoadScale& scale = {});

// Latency mark tags used by the server workloads.
inline constexpr std::int64_t kWebstoneLatencyTag = 1;
inline constexpr std::int64_t kTpcwLatencyTag = 2;

}  // namespace apps
}  // namespace kivati

#endif  // KIVATI_APPS_WORKLOADS_H_
