#include <string>

#include "apps/workloads.h"

namespace kivati {
namespace apps {
namespace {

// Models VLC's playback pipeline: even-numbered workers decode frames into
// a lock-protected FIFO, odd-numbered workers drain it and "render". Frame
// counters are deliberately unprotected (benign races), as media players'
// statistics typically are. FIFO operations are their own subroutines, so
// their ARs are short-lived (clear_ar at return) like the real player's
// fifo_Put/fifo_Get.
std::string VlcSource(const LoadScale& scale) {
  const int frames = scale.iterations;
  return std::string(R"(
    sync int vlc_fifo_lock;
    int vlc_fifo[64];
    int vlc_head;
    int vlc_tail;
    int vlc_frames_decoded;
    int vlc_frames_rendered;
    int vlc_dropped;
    int vlc_dma_state[16];

    int vlc_push(int frame) {
      int pushed = 0;
      lock(vlc_fifo_lock);
      int next = (vlc_tail + 1) & 63;
      if (next != vlc_head) {
        vlc_fifo[vlc_tail] = frame;
        vlc_tail = next;
        pushed = 1;
      }
      unlock(vlc_fifo_lock);
      return pushed;
    }

    int vlc_pop(int unused) {
      int frame = 0;
      lock(vlc_fifo_lock);
      if (vlc_head != vlc_tail) {
        frame = vlc_fifo[vlc_head];
        vlc_head = (vlc_head + 1) & 63;
      }
      unlock(vlc_fifo_lock);
      return frame;
    }

    void vlc_count_decoded(int n) {
      // Unprotected counter: read-modify-write races benignly with the
      // renderer reading it for the on-screen display.
      vlc_frames_decoded = vlc_frames_decoded + n;
    }

    int vlc_osd_update(int rendered) {
      int osd = vlc_frames_decoded;
      int drops = vlc_dropped;
      int dropped = 0;
      for (int k = 0; k < 100; k = k + 1) {
        dropped = dropped * 3 + k;
      }
      dropped = 0;
      if (osd - rendered > 48) {
        vlc_dropped = drops + 1;
        dropped = 1;
      }
      vlc_frames_rendered = vlc_frames_rendered + 1;
      return dropped;
    }

    void vlc_hw_decode(int id) {
      // Hardware-assisted decode: the DMA descriptor slot stays claimed
      // while the engine runs, pinning a watchpoint for the duration.
      // Claim both the DMA descriptor and the output picture buffer for
      // the duration of the hardware decode.
      vlc_dma_state[id & 15] = 1;
      vlc_dma_state[(id + 4) & 15] = 1;
      sleep(9000);
      int st = vlc_dma_state[id & 15];
      vlc_dma_state[id & 15] = st - 1;
      int pic = vlc_dma_state[(id + 4) & 15];
      vlc_dma_state[(id + 4) & 15] = pic - 1;
    }

    void vlc_vsync_wait(int id) {
      // Display path: the vout picture slot stays claimed until vsync.
      vlc_dma_state[(id + 8) & 15] = 1;
      sleep(3000);
      int st = vlc_dma_state[(id + 8) & 15];
      vlc_dma_state[(id + 8) & 15] = st - 1;
    }

    void vlc_stats_overlay(int unused) {
      // Updating the statistics overlay rewrites the counters in place:
      // single unpaired accesses racing the decode/render updates.
      vlc_frames_decoded = vlc_frames_decoded + 0;
      vlc_frames_rendered = vlc_frames_rendered + 0;
    }

    void vlc_osd_reset(int unused) {
      // Clearing the on-screen drop counter is a single unpaired write —
      // unannotated, benign, occasionally non-serializable with an OSD
      // update in flight.
      vlc_dropped = 0;
    }

    void vlc_decode_one(int seed) {
      int acc = seed;
      for (int k = 0; k < 350; k = k + 1) {
        acc = acc * 48271 + k;
      }
    }

    void vlc_decoder_loop(int id) {
      int seed = id + 11;
      for (int i = 0; i < )" + std::to_string(frames) + R"(; i = i + 1) {
        vlc_decode_one(seed + i);
        vlc_hw_decode(id);
        int pushed = 0;
        while (pushed == 0) {
          pushed = vlc_push(i + 1);
          if (pushed == 0) {
            sleep(1600);
          }
        }
        vlc_count_decoded(1);
      }
    }

    void vlc_render_loop(int id) {
      int rendered = 0;
      while (rendered < )" + std::to_string(frames) + R"() {
        int frame = vlc_pop(0);
        if (frame != 0) {
          int acc = frame;
          for (int k = 0; k < 250; k = k + 1) {
            acc = acc * 69621 + k;
          }
          int dropped = vlc_osd_update(rendered);
          rendered = rendered + 1;
          if ((rendered & 1) == 0) {
            vlc_vsync_wait(id);
          }
          if ((rendered & 7) == 0) {
            vlc_osd_reset(0);
          }
          if ((rendered & 15) == 1) {
            vlc_stats_overlay(0);
          }
        }
        if (frame == 0) {
          sleep(1600);
        }
      }
    }

    void vlc_worker(int id) {
      if ((id & 1) == 0) {
        vlc_decoder_loop(id);
      }
      if ((id & 1) == 1) {
        vlc_render_loop(id);
      }
    }
  )");
}

}  // namespace

App MakeVlc(const LoadScale& scale) {
  // Pair decoders with renderers; an even worker count keeps the FIFO
  // balanced so the run terminates.
  const int workers = scale.workers + (scale.workers & 1);
  return AssembleApp("VLC", VlcSource(scale), "vlc_worker", workers, {}, 400'000'000,
                     scale.annotator, scale.prune, scale.correlate);
}

}  // namespace apps
}  // namespace kivati
