#include <string>

#include "apps/workloads.h"

namespace kivati {
namespace apps {
namespace {

// Models MySQL under a TPC-W-style transactional mix: client threads run
// transactions that lock a row-stripe, read-modify-write two rows, append
// to the binary log (whose cursor is unprotected, like the MySQL binlog
// races), and occasionally read a hot statistics counter without a lock.
// Transaction latency is emitted as a mark event (tag 2).
std::string TpcwSource(const LoadScale& scale) {
  return std::string(R"(
    int db_txn_state[16];
    sync int db_lock_even;
    sync int db_lock_odd;
    int db_rows[256];
    int db_commits;
    int db_binlog_len;
    int db_binlog[512];
    int db_hot_counter;

    void db_binlog_append(int entry) {
      // Unprotected binlog cursor: read then write, remote writers can
      // interleave (MySQL's binlog race family).
      int pos = db_binlog_len;
      db_binlog[pos & 511] = entry;
      db_binlog_len = pos + 1;
    }

    void db_txn(int seed) {
      int row_a = seed & 255;
      int row_b = (seed * 131) & 255;
      // Lock the stripe of the first row (even/odd striping).
      int stripe = row_a & 1;
      if (stripe == 0) {
        lock(db_lock_even);
      }
      if (stripe == 1) {
        lock(db_lock_odd);
      }
      int a = db_rows[row_a];
      int b = db_rows[row_b];
      db_rows[row_a] = a + 1;
      db_rows[row_b] = b + a;
      db_commits = db_commits + 1;
      if (stripe == 0) {
        unlock(db_lock_even);
      }
      if (stripe == 1) {
        unlock(db_lock_odd);
      }
      db_binlog_append(a + b);
    }

    int db_page_view(int seed) {
      // Read-only page view: unprotected hot-counter update plus a short
      // row scan (benign races with committers).
      int hot = db_hot_counter;
      int acc = hot;
      for (int k = 0; k < 6; k = k + 1) {
        acc = acc + db_rows[(seed + k) & 255];
      }
      for (int k = 0; k < 100; k = k + 1) {
        acc = acc * 7 + k;
      }
      db_hot_counter = hot + 1;
      return acc;
    }

    void db_render(int seed) {
      // Page templating: local compute.
      int acc = seed;
      for (int k = 0; k < 300; k = k + 1) {
        acc = acc * 31 + k;
      }
    }

    void db_slow_txn(int id) {
      // A long transaction: connection state is marked, the commit flushes
      // to disk, then the state is read back — the write..read region spans
      // the flush and holds a watchpoint (Table 8's exhaustion source).
      db_txn_state[id & 15] = 1;
      io(6000);
      int state = db_txn_state[id & 15];
      db_txn_state[id & 15] = state + 1;
    }

    void db_flush_status(int unused) {
      // FLUSH STATUS / FLUSH LOGS: single unpaired writes resetting hot
      // counters and rotating the binlog — unannotated, benign, and
      // non-serializable with in-flight transactions.
      db_hot_counter = 0;
      db_commits = db_commits + 0;
      db_binlog_len = 0;
    }

    void db_worker(int id) {
      int seed = id * 2246822519 + 31;
      for (int i = 0; i < )" + std::to_string(scale.iterations) + R"(; i = i + 1) {
        int t0 = now();
        // Per-connection state slot, held open across the transaction
        // (mirrors MySQL's THD status updates) — pins a watchpoint.

        seed = seed * 6364136223846793005 + 1442695040888963407;

        // Think time + network round trip.
        io(150 + (seed & 255));

        if ((seed & 3) == 0) {
          db_txn(seed);
          // Disk flush for the commit.
          io(400);
        }
        if ((seed & 3) != 0) {
          int acc = db_page_view(seed);
          db_render(seed + acc);
        }

        db_slow_txn(id);
        if ((seed & 7) == 0) {
          db_flush_status(0);
        }

        int t1 = now();
        mark(2, t1 - t0);
      }
    }
  )");
}

}  // namespace

App MakeTpcw(const LoadScale& scale) {
  return AssembleApp("TPC-W", TpcwSource(scale), "db_worker", scale.workers, {},
                     400'000'000, scale.annotator, scale.prune, scale.correlate);
}

}  // namespace apps
}  // namespace kivati
