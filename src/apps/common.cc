#include "apps/common.h"

namespace kivati {
namespace apps {

std::unordered_set<ArId> ArsOnVariable(const CompiledProgram& compiled,
                                       const std::string& variable) {
  std::unordered_set<ArId> result;
  for (const ArDebugInfo& info : compiled.ar_infos) {
    if (info.variable == variable) {
      result.insert(info.id);
    }
  }
  return result;
}

App AssembleApp(const std::string& name, const std::string& source,
                const std::string& worker_function, int workers,
                const std::vector<std::string>& buggy_vars, Cycles default_max_cycles,
                const AnnotateOptions& annotator) {
  App app;
  CompileOptions compile_options;
  compile_options.annotator = annotator;
  auto compiled = std::make_shared<CompiledProgram>(CompileSource(source, compile_options));
  app.workload.name = name;
  app.workload.program = compiled->program;
  for (int i = 0; i < workers; ++i) {
    app.workload.threads.emplace_back(worker_function, static_cast<std::uint64_t>(i));
  }
  app.workload.init = [compiled](AddressSpace& memory) { compiled->InitMemory(memory); };
  app.workload.sync_var_ars = compiled->sync_ars;
  for (const std::string& var : buggy_vars) {
    const auto ars = ArsOnVariable(*compiled, var);
    app.workload.buggy_ars.insert(ars.begin(), ars.end());
  }
  app.workload.default_max_cycles = default_max_cycles;
  app.compiled = std::move(compiled);
  return app;
}

}  // namespace apps
}  // namespace kivati
