#include "apps/common.h"

namespace kivati {
namespace apps {

std::unordered_set<ArId> ArsOnVariable(const CompiledProgram& compiled,
                                       const std::string& variable) {
  std::unordered_set<ArId> result;
  for (const ArDebugInfo& info : compiled.ar_infos) {
    if (info.variable == variable) {
      result.insert(info.id);
    }
  }
  return result;
}

App AssembleApp(const std::string& name, const std::string& source,
                const std::string& worker_function, int workers,
                const std::vector<std::string>& buggy_vars, Cycles default_max_cycles,
                const AnnotateOptions& annotator, bool prune, bool correlate) {
  App app;
  CompileOptions compile_options;
  compile_options.annotator = annotator;
  compile_options.conflict.prune = prune;
  compile_options.correlate = correlate;
  compile_options.conflict.roots.emplace_back(worker_function, workers);
  auto compiled = std::make_shared<CompiledProgram>(CompileSource(source, compile_options));
  app.workload.name = name;
  app.workload.program = compiled->program;
  for (int i = 0; i < workers; ++i) {
    app.workload.threads.emplace_back(worker_function, static_cast<std::uint64_t>(i));
  }
  app.workload.init = [compiled](AddressSpace& memory) { compiled->InitMemory(memory); };
  app.workload.sync_var_ars = compiled->sync_ars;
  for (const std::string& var : buggy_vars) {
    const auto ars = ArsOnVariable(*compiled, var);
    app.workload.buggy_ars.insert(ars.begin(), ars.end());
  }
  app.workload.default_max_cycles = default_max_cycles;
  app.workload.ars_annotated = compiled->num_ars;
  app.workload.ars_no_remote_writer = compiled->conflict.no_remote_writer;
  app.workload.ars_lock_protected = compiled->conflict.lock_protected;
  app.workload.ars_watch_required = compiled->conflict.watch_required;
  app.workload.ars_pruned = compiled->conflict.pruned.size();
  app.compiled = std::move(compiled);
  return app;
}

}  // namespace apps
}  // namespace kivati
