#include "apps/bugs.h"

#include <algorithm>
#include <cctype>

namespace kivati {
namespace apps {
namespace {

// The buggy region body for each pattern, operating on variable V. The
// local side is the annotated access pair; the remote side is a single
// access (so it carries no begin_atomic of its own and is caught purely by
// the watchpoint).
std::string LocalRegion(BugPattern pattern, const std::string& v, int window) {
  const std::string pad =
      "      int w = 0;\n"
      "      for (int k = 0; k < " + std::to_string(window) + "; k = k + 1) {\n"
      "        w = w + k;\n"
      "      }\n";
  switch (pattern) {
    case BugPattern::kCheckThenSet:
      // e.g. NSS 341323: if (ptr == NULL) ptr = new_value — two threads can
      // both pass the check (Figure 1).
      return "      if (" + v + " == 0) {\n" + pad +
             "        " + v + " = id + 1;\n"
             "      }\n"
             "      " + v + " = 0;\n";
    case BugPattern::kUpdateThenUse:
      // e.g. Apache 25520: store a fresh handle, then use it — a remote
      // reset between the two leaves a stale use.
      return "      " + v + " = seed & 1023;\n" + pad +
             "      " + v + "_sink = " + v + " + 1;\n";
    case BugPattern::kDirtyRead:
      // e.g. MySQL 25306: a two-step update whose intermediate state a
      // remote reader must never observe.
      return "      " + v + " = 1;\n" + pad +
             "      " + v + " = 0;\n";
    case BugPattern::kDoubleRead:
      // e.g. NSS 225525: two reads assumed consistent; a remote swap
      // between them breaks the invariant.
      return "      int a = " + v + ";\n" + pad +
             "      int b = " + v + ";\n"
             "      if (a != b) {\n"
             "        " + v + "_sink = " + v + "_sink + 1;\n"
             "      }\n";
  }
  return {};
}

std::string RemoteAccess(BugPattern pattern, const std::string& v) {
  switch (pattern) {
    case BugPattern::kCheckThenSet:
    case BugPattern::kUpdateThenUse:
    case BugPattern::kDoubleRead:
      return "      " + v + " = seed & 255;\n";
    case BugPattern::kDirtyRead:
      return "      " + v + "_sink = " + v + ";\n";
  }
  return {};
}

std::string BugSource(const BugInfo& bug) {
  const std::string v = bug.variable();
  return std::string("    int ") + v + ";\n" +
         "    int " + v + "_sink;\n" + R"(
    int noise_a;
    int noise_b;

    void bug_region(int id, int seed) {
)" + LocalRegion(bug.pattern, v, bug.window_work) + R"(
    }

    void bug_local(int id) {
      int seed = id * 2654435761 + 13;
      for (int i = 0; i < 1000000000; i = i + 1) {
        seed = seed * 6364136223846793005 + 1442695040888963407;
        if ((seed & )" + std::to_string(bug.gate_mask) + R"() == 0) {
          bug_region(id, seed);
        }
        int acc = seed;
        for (int k = 0; k < 60; k = k + 1) {
          acc = acc * 3 + 1;
        }
      }
    }

    void bug_remote(int id) {
      int seed = id * 40503 + 57;
      for (int i = 0; i < 1000000000; i = i + 1) {
        seed = seed * 6364136223846793005 + 1442695040888963407;
        if ((seed & )" + std::to_string(bug.touch_mask) + R"() == 0) {
)" + RemoteAccess(bug.pattern, v) + R"(
        }
        int acc = seed;
        for (int k = 0; k < 20; k = k + 1) {
          acc = acc * 5 + 7;
        }
      }
    }

    void bug_noise_touch(int x) {
      int t = noise_a;
      noise_a = t + 1;
      noise_b = noise_b + (x & 7);
    }

    void bug_noise(int id) {
      int seed = id + 3;
      for (int i = 0; i < 1000000000; i = i + 1) {
        seed = seed * 6364136223846793005 + 1442695040888963407;
        bug_noise_touch(seed);
        int acc = seed;
        for (int k = 0; k < 60; k = k + 1) {
          acc = acc * 3 + k;
        }
      }
    }

    void bug_thread(int id) {
      if (id == 0) {
        bug_local(id);
      }
      if (id == 1) {
        bug_remote(id);
      }
      if (id > 1) {
        bug_noise(id);
      }
    }
  )";
}

}  // namespace

std::string BugInfo::variable() const {
  std::string prefix = app;
  std::transform(prefix.begin(), prefix.end(), prefix.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  // "tpc-w" style names would be invalid identifiers.
  prefix.erase(std::remove_if(prefix.begin(), prefix.end(),
                              [](unsigned char c) { return std::isalnum(c) == 0; }),
               prefix.end());
  return prefix + id + "_v";
}

const std::vector<BugInfo>& BugCorpus() {
  // Trigger rates calibrated to Table 6's relative ordering: small masks
  // manifest quickly in prevention mode; the largest masks only manifest
  // under bug-finding pauses within the harness budget.
  static const auto* kCorpus = new std::vector<BugInfo>{
      {"Apache", "44402", BugPattern::kCheckThenSet, /*gate=*/1023, /*touch=*/255, 30},
      {"Apache", "21287", BugPattern::kDirtyRead, /*gate=*/4095, /*touch=*/511, 15},
      {"Apache", "25520", BugPattern::kUpdateThenUse, /*gate=*/4095, /*touch=*/511, 15},
      {"NSS", "341323", BugPattern::kCheckThenSet, /*gate=*/511, /*touch=*/127, 25},
      {"NSS", "329072", BugPattern::kDoubleRead, /*gate=*/63, /*touch=*/31, 40},
      {"NSS", "225525", BugPattern::kDoubleRead, /*gate=*/255, /*touch=*/63, 30},
      {"NSS", "270689", BugPattern::kUpdateThenUse, /*gate=*/127, /*touch=*/31, 35},
      {"NSS", "169296", BugPattern::kCheckThenSet, /*gate=*/4095, /*touch=*/511, 12},
      {"NSS", "201134", BugPattern::kDirtyRead, /*gate=*/1023, /*touch=*/255, 20},
      {"MySQL", "19938", BugPattern::kCheckThenSet, /*gate=*/255, /*touch=*/63, 30},
      {"MySQL", "25306", BugPattern::kDirtyRead, /*gate=*/511, /*touch=*/127, 25},
  };
  return *kCorpus;
}

App MakeBugApp(const BugInfo& bug, bool prune) {
  App app = AssembleApp(bug.app + " " + bug.id, BugSource(bug), "bug_thread",
                        /*workers=*/3, {bug.variable()},
                        /*default_max_cycles=*/300'000'000, /*annotator=*/{}, prune);
  return app;
}

}  // namespace apps
}  // namespace kivati
