#include "apps/bugs.h"

#include <algorithm>
#include <cctype>

namespace kivati {
namespace apps {
namespace {

// The buggy region body for each pattern, operating on variable V. The
// local side is the annotated access pair; the remote side is a single
// access (so it carries no begin_atomic of its own and is caught purely by
// the watchpoint).
std::string LocalRegion(BugPattern pattern, const std::string& v, int window) {
  const std::string pad =
      "      int w = 0;\n"
      "      for (int k = 0; k < " + std::to_string(window) + "; k = k + 1) {\n"
      "        w = w + k;\n"
      "      }\n";
  switch (pattern) {
    case BugPattern::kCheckThenSet:
      // e.g. NSS 341323: if (ptr == NULL) ptr = new_value — two threads can
      // both pass the check (Figure 1).
      return "      if (" + v + " == 0) {\n" + pad +
             "        " + v + " = id + 1;\n"
             "      }\n"
             "      " + v + " = 0;\n";
    case BugPattern::kUpdateThenUse:
      // e.g. Apache 25520: store a fresh handle, then use it — a remote
      // reset between the two leaves a stale use.
      return "      " + v + " = seed & 1023;\n" + pad +
             "      " + v + "_sink = " + v + " + 1;\n";
    case BugPattern::kDirtyRead:
      // e.g. MySQL 25306: a two-step update whose intermediate state a
      // remote reader must never observe.
      return "      " + v + " = 1;\n" + pad +
             "      " + v + " = 0;\n";
    case BugPattern::kDoubleRead:
      // e.g. NSS 225525: two reads assumed consistent; a remote swap
      // between them breaks the invariant.
      return "      int a = " + v + ";\n" + pad +
             "      int b = " + v + ";\n"
             "      if (a != b) {\n"
             "        " + v + "_sink = " + v + "_sink + 1;\n"
             "      }\n";
    // Multi-variable patterns. The local access shapes are chosen so every
    // AR the single-variable annotator derives is R..W (watch W): the remote
    // side only READS AR-carrying variables and only WRITES variables with a
    // single local access (no AR), so nothing below is detectable until the
    // correlation pass fuses the v/v_aux pair (soundness_test asserts the
    // differential).
    case BugPattern::kPairDesync:
      // MUVI's len/buf family: refill the buffer, then publish the new
      // length. A remote reader between the two sees new contents with the
      // stale length.
      return "      int t = " + v + ";\n" + pad +
             "      " + v + "_aux = seed & 1023;\n"
             "      " + v + " = t + 1;\n";
    case BugPattern::kFlagPair:
      // Flag/data check-then-act: check ready, then consume data. The
      // producer runs on the local thread's outer loop (LocalProduce); the
      // remote thread overwrites data after the check passes. The consumed
      // value stays local — publishing it to the shared sink would race the
      // remote's own sink write and muddy the comparison with a second,
      // unseeded bug.
      return "      if (" + v + " == 1) {\n" + pad +
             "        int t = " + v + "_aux;\n"
             "        " + v + " = t - t;\n"
             "      }\n";
    case BugPattern::kPairSwap:
      // Paired-pointer swap: head and spare must be exchanged atomically; a
      // remote reader can observe the transient head == spare state.
      return "      int t = " + v + ";\n" + pad +
             "      " + v + " = " + v + "_aux;\n"
             "      " + v + "_aux = t;\n";
    case BugPattern::kStatPair:
      // Stat-counter pair: hits and total move together; a remote ratio
      // reader can see hits bumped but not total.
      return "      " + v + " = " + v + " + 1;\n" + pad +
             "      " + v + "_aux = " + v + "_aux + 1;\n";
  }
  return {};
}

// Extra statement appended to the local thread's outer loop, outside the
// annotated region (windows there are broken by the bug_region call, so the
// single accesses below never become ARs).
std::string LocalProduce(BugPattern pattern, const std::string& v) {
  if (pattern == BugPattern::kFlagPair) {
    // The producer half of the flag/data pair: stage data, then raise the
    // flag so the consumer's check can pass.
    return "        " + v + "_aux = seed & 511;\n"
           "        " + v + " = 1;\n";
  }
  return {};
}

std::string RemoteAccess(BugPattern pattern, const std::string& v) {
  switch (pattern) {
    case BugPattern::kCheckThenSet:
    case BugPattern::kUpdateThenUse:
    case BugPattern::kDoubleRead:
      return "      " + v + " = seed & 255;\n";
    case BugPattern::kDirtyRead:
      return "      " + v + "_sink = " + v + ";\n";
    // Multi-variable remotes co-access BOTH members in one window: that is
    // what lifts the pair's support to min_support (the local region is the
    // other co-access site) so the correlation survives pruning.
    case BugPattern::kPairDesync:
    case BugPattern::kPairSwap:
    case BugPattern::kStatPair:
      // Pure reader of the pair — invisible to every single-variable watch.
      return "      " + v + "_sink = " + v + " + " + v + "_aux;\n";
    case BugPattern::kFlagPair:
      // Competing producer: overwrites data (no AR -> no watch) and polls
      // the flag (read; the flag AR's single-variable watch is W).
      return "      " + v + "_aux = seed & 255;\n"
             "      " + v + "_sink = " + v + ";\n";
  }
  return {};
}

std::string BugSource(const BugInfo& bug) {
  const std::string v = bug.variable();
  return std::string("    int ") + v + ";\n" +
         "    int " + v + "_sink;\n" +
         (bug.multivar() ? "    int " + v + "_aux;\n" : std::string()) + R"(
    int noise_a;
    int noise_b;

    void bug_region(int id, int seed) {
)" + LocalRegion(bug.pattern, v, bug.window_work) + R"(
    }

    void bug_local(int id) {
      int seed = id * 2654435761 + 13;
      for (int i = 0; i < 1000000000; i = i + 1) {
        seed = seed * 6364136223846793005 + 1442695040888963407;
        if ((seed & )" + std::to_string(bug.gate_mask) + R"() == 0) {
          bug_region(id, seed);
)" + LocalProduce(bug.pattern, v) + R"(        }
        int acc = seed;
        for (int k = 0; k < 60; k = k + 1) {
          acc = acc * 3 + 1;
        }
      }
    }

    void bug_remote(int id) {
      int seed = id * 40503 + 57;
      for (int i = 0; i < 1000000000; i = i + 1) {
        seed = seed * 6364136223846793005 + 1442695040888963407;
        if ((seed & )" + std::to_string(bug.touch_mask) + R"() == 0) {
)" + RemoteAccess(bug.pattern, v) + R"(
        }
        int acc = seed;
        for (int k = 0; k < 20; k = k + 1) {
          acc = acc * 5 + 7;
        }
      }
    }

    void bug_noise_touch(int x) {
      int t = noise_a;
      noise_a = t + 1;
      noise_b = noise_b + (x & 7);
    }

    void bug_noise(int id) {
      int seed = id + 3;
      for (int i = 0; i < 1000000000; i = i + 1) {
        seed = seed * 6364136223846793005 + 1442695040888963407;
        bug_noise_touch(seed);
        int acc = seed;
        for (int k = 0; k < 60; k = k + 1) {
          acc = acc * 3 + k;
        }
      }
    }

    void bug_thread(int id) {
      if (id == 0) {
        bug_local(id);
      }
      if (id == 1) {
        bug_remote(id);
      }
      if (id > 1) {
        bug_noise(id);
      }
    }
  )";
}

}  // namespace

std::string BugInfo::variable() const {
  std::string prefix = app;
  std::transform(prefix.begin(), prefix.end(), prefix.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  // "tpc-w" style names would be invalid identifiers.
  prefix.erase(std::remove_if(prefix.begin(), prefix.end(),
                              [](unsigned char c) { return std::isalnum(c) == 0; }),
               prefix.end());
  return prefix + id + "_v";
}

bool BugInfo::multivar() const {
  switch (pattern) {
    case BugPattern::kPairDesync:
    case BugPattern::kFlagPair:
    case BugPattern::kPairSwap:
    case BugPattern::kStatPair:
      return true;
    default:
      return false;
  }
}

std::string BugInfo::aux_variable() const { return variable() + "_aux"; }

const std::vector<BugInfo>& BugCorpus() {
  // Trigger rates calibrated to Table 6's relative ordering: small masks
  // manifest quickly in prevention mode; the largest masks only manifest
  // under bug-finding pauses within the harness budget.
  static const auto* kCorpus = new std::vector<BugInfo>{
      {"Apache", "44402", BugPattern::kCheckThenSet, /*gate=*/1023, /*touch=*/255, 30},
      {"Apache", "21287", BugPattern::kDirtyRead, /*gate=*/4095, /*touch=*/511, 15},
      {"Apache", "25520", BugPattern::kUpdateThenUse, /*gate=*/4095, /*touch=*/511, 15},
      {"NSS", "341323", BugPattern::kCheckThenSet, /*gate=*/511, /*touch=*/127, 25},
      {"NSS", "329072", BugPattern::kDoubleRead, /*gate=*/63, /*touch=*/31, 40},
      {"NSS", "225525", BugPattern::kDoubleRead, /*gate=*/255, /*touch=*/63, 30},
      {"NSS", "270689", BugPattern::kUpdateThenUse, /*gate=*/127, /*touch=*/31, 35},
      {"NSS", "169296", BugPattern::kCheckThenSet, /*gate=*/4095, /*touch=*/511, 12},
      {"NSS", "201134", BugPattern::kDirtyRead, /*gate=*/1023, /*touch=*/255, 20},
      {"MySQL", "19938", BugPattern::kCheckThenSet, /*gate=*/255, /*touch=*/63, 30},
      {"MySQL", "25306", BugPattern::kDirtyRead, /*gate=*/511, /*touch=*/127, 25},
  };
  return *kCorpus;
}

const std::vector<BugInfo>& MultiVarBugCorpus() {
  // MUVI-style multi-variable violations (docs/correlation.md). Triggers are
  // frequent: the point of this corpus is the detect/miss differential
  // between the fused and single-variable pipelines, not Table-6 latency.
  static const auto* kCorpus = new std::vector<BugInfo>{
      {"Apache", "45605", BugPattern::kPairDesync, /*gate=*/63, /*touch=*/15, 40},
      {"Mozilla", "73291", BugPattern::kFlagPair, /*gate=*/63, /*touch=*/15, 40},
      {"MySQL", "38883", BugPattern::kPairSwap, /*gate=*/63, /*touch=*/15, 40},
      {"NSS", "88331", BugPattern::kStatPair, /*gate=*/63, /*touch=*/15, 40},
  };
  return *kCorpus;
}

App MakeBugApp(const BugInfo& bug, bool prune, bool correlate) {
  std::vector<std::string> buggy_vars{bug.variable()};
  if (bug.multivar()) {
    // Violations can land on the fused host AR or the synthesized partner
    // AR; both variables count as the bug.
    buggy_vars.push_back(bug.aux_variable());
  }
  App app = AssembleApp(bug.app + " " + bug.id, BugSource(bug), "bug_thread",
                        /*workers=*/3, buggy_vars,
                        /*default_max_cycles=*/300'000'000, /*annotator=*/{}, prune, correlate);
  return app;
}

}  // namespace apps
}  // namespace kivati
