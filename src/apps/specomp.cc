#include <algorithm>
#include <string>

#include "apps/workloads.h"

namespace kivati {
namespace apps {
namespace {

// Models a SPEC OMP kernel: two threads (the paper's machine has two cores)
// alternate data-parallel phases over disjoint halves of a shared array,
// separated by a spin barrier. The barrier's generation flag is the paper's
// Figure-5 pattern: a waiter holds an open AR over the flag while spinning,
// so the releasing write is a *required* violation resolved only by the
// suspension timeout — unless the flag is whitelisted as a sync variable.
std::string SpecOmpSource(int threads, int phases, int chunk, int inner) {
  return std::string(R"(
    sync int omp_bar_lock;
    sync int omp_arrived;
    sync int omp_generation;
    sync int omp_reduce_lock;
    int omp_data[)" + std::to_string(threads * chunk) + R"(];
    int omp_result;
    int omp_progress[8];
    int omp_master_state;

    void omp_barrier(int id) {
      int gen = omp_generation;
      lock(omp_bar_lock);
      omp_arrived = omp_arrived + 1;
      int last = 0;
      if (omp_arrived == )" + std::to_string(threads) + R"() {
        last = 1;
      }
      unlock(omp_bar_lock);
      if (last == 1) {
        omp_arrived = 0;
        omp_generation = gen + 1;
      }
      if (last == 0) {
        while (omp_generation == gen);
      }
    }

    void omp_update_element(int idx, int p) {
      int v = omp_data[idx];
      // Stencil-style local compute on the element.
      int acc = v + p;
      for (int r = 0; r < )" + std::to_string(inner) + R"(; r = r + 1) {
        acc = acc * 29 + r;
      }
      omp_data[idx] = acc;
    }

    void omp_lead_in(int id, int base, int p) {
      // The phase leader additionally holds the master state while it works
      // through the first block of elements; during this window five
      // regions contend for four registers, so some go unmonitored
      // (Table 8/9's exhaustion).
      omp_master_state = p;
      for (int k = 0; k < 28; k = k + 1) {
        omp_update_element(base + k, p);
      }
      omp_master_state = p + 1;
    }

    void omp_run_phase(int id, int base, int p) {
      // Progress slot written at phase entry and read at phase exit: the
      // region spans the whole sweep and holds a watchpoint per thread.
      omp_progress[id] = p;
      int start = 0;
      if (id == 0) {
        omp_lead_in(id, base, p);
        start = 28;
      }
      for (int k = start; k < )" + std::to_string(chunk) + R"(; k = k + 1) {
        omp_update_element(base + k, p);
      }
      omp_progress[id] = p + 1;
    }

    int omp_peek_progress(int peer) {
      // Work-stealing heuristic: a single unpaired read of the peer's
      // progress slot, racing the peer's own (write..read..write) region.
      return omp_progress[peer];
    }

    void omp_worker(int id) {
      int base = id * )" + std::to_string(chunk) + R"(;
      for (int p = 0; p < )" + std::to_string(phases) + R"(; p = p + 1) {
        omp_run_phase(id, base, p);
        int peer_done = omp_peek_progress(1 - id);
        omp_barrier(id);
      }
      // Final reduction under a lock.
      int sum = 0;
      for (int k = 0; k < )" + std::to_string(chunk) + R"(; k = k + 1) {
        sum = sum + omp_data[base + k];
      }
      lock(omp_reduce_lock);
      omp_result = omp_result + sum;
      unlock(omp_reduce_lock);
    }
  )");
}

}  // namespace

App MakeSpecOmp(const LoadScale& scale) {
  const int threads = 2;  // both cores, as in the paper
  const int phases = std::max(2, scale.iterations / 80);
  const int chunk = 224;
  const int inner = 250;
  return AssembleApp("SPEC OMP", SpecOmpSource(threads, phases, chunk, inner), "omp_worker",
                     threads, {}, 400'000'000, scale.annotator, scale.prune, scale.correlate);
}

std::vector<App> AllPerformanceApps(const LoadScale& scale) {
  std::vector<App> apps;
  apps.push_back(MakeNss(scale));
  apps.push_back(MakeVlc(scale));
  apps.push_back(MakeWebstone(scale));
  apps.push_back(MakeTpcw(scale));
  apps.push_back(MakeSpecOmp(scale));
  return apps;
}

}  // namespace apps
}  // namespace kivati
