// Shared plumbing for the synthetic application suite (paper Table 2).
//
// Each application is a mini-C program modelling the sharing patterns of the
// paper's real workload: lock-protected state (sync variables), unprotected
// benign races (the false-positive sources), spin-wait communication
// (required violations), compute phases, and — in the bug workloads —
// faithful reproductions of the reported atomicity-violation bugs.
#ifndef KIVATI_APPS_COMMON_H_
#define KIVATI_APPS_COMMON_H_

#include <memory>
#include <string>
#include <unordered_set>

#include "compile/compiler.h"
#include "core/workload.h"

namespace kivati {
namespace apps {

// A workload together with its compilation artifacts (global addresses and
// AR debug info, used by experiment harnesses).
struct App {
  Workload workload;
  std::shared_ptr<const CompiledProgram> compiled;
};

// Scale knobs common to the performance workloads. Defaults are sized so a
// full Table-3 sweep runs in seconds of host time while still executing
// hundreds of thousands of annotations.
struct LoadScale {
  int workers = 4;
  int iterations = 250;
  // Annotator configuration used when compiling the workload (defaults to
  // the paper's basic intra-procedural, name-based analysis).
  AnnotateOptions annotator;
  // Drop annotations for ARs the conflict analysis proves unviolable
  // (--no-prune sets this false).
  bool prune = true;
  // Run the correlated-variable fusion pass (--no-correlate sets this
  // false). No-op on modules where nothing fuses.
  bool correlate = true;
};

// All AR ids whose shared variable is named `variable` (any function).
std::unordered_set<ArId> ArsOnVariable(const CompiledProgram& compiled,
                                       const std::string& variable);

// Assembles an App: compiles `source`, creates `workers` threads running
// `worker_function` with ids 0..workers-1, wires up memory initialization,
// sync-var ARs and the buggy-AR set (ARs on any variable in `buggy_vars`).
// The conflict analysis runs with `worker_function` × `workers` as the
// thread roots; `prune` controls whether its verdicts drop annotations.
App AssembleApp(const std::string& name, const std::string& source,
                const std::string& worker_function, int workers,
                const std::vector<std::string>& buggy_vars = {},
                Cycles default_max_cycles = 400'000'000,
                const AnnotateOptions& annotator = {}, bool prune = true,
                bool correlate = true);

}  // namespace apps
}  // namespace kivati

#endif  // KIVATI_APPS_COMMON_H_
