#include <string>

#include "apps/workloads.h"

namespace kivati {
namespace apps {
namespace {

// Models the NSS module of Firefox: a session table and certificate cache
// protected by a global lock, a double-checked initialization flag, and
// unprotected statistics counters that race benignly (the paper's main
// false-positive source for this app).
//
// Shared-state operations live in small helper subroutines, as in the real
// library; the annotator's intra-procedural pairing therefore produces
// short ARs closed by clear_ar at each return rather than loop-spanning
// regions.
std::string NssSource(const LoadScale& scale) {
  return std::string(R"(
    sync int nss_lock;
    sync int nss_initialized;
    int nss_sessions[64];
    int nss_session_count;
    int nss_cert_cache[128];
    int nss_stat_hits;
    int nss_stat_misses;
    int nss_bytes_signed;
    int nss_token_state[16];

    void nss_ensure_init(int id) {
      // Double-checked library initialization (benign/required pattern).
      if (nss_initialized == 0) {
        lock(nss_lock);
        if (nss_initialized == 0) {
          nss_initialized = 1;
        }
        unlock(nss_lock);
      }
    }

    void nss_session_touch(int slot) {
      lock(nss_lock);
      nss_sessions[slot] = nss_sessions[slot] + 1;
      nss_session_count = nss_session_count + 1;
      unlock(nss_lock);
    }

    void nss_cache_probe(int c, int slot) {
      // Certificate cache probe with an unprotected fill: the read and
      // conditional write form an AR other threads can violate (benign: a
      // duplicate fill is harmless). Parsing the certificate between the
      // probe and the fill widens the vulnerable window, as in real code.
      int cached = nss_cert_cache[c];
      int parse = cached;
      for (int k = 0; k < 120; k = k + 1) {
        parse = parse * 31 + k;
      }
      if (cached == 0) {
        nss_stat_misses = nss_stat_misses + 1;
        nss_cert_cache[c] = slot + 1;
      }
      if (cached != 0) {
        nss_stat_hits = nss_stat_hits + 1;
      }
    }

    void nss_token_op(int id) {
      // Smart-card token operation: the session-state slot is marked busy,
      // the token round trip takes a while, then the slot is read back.
      // The write..read region holds a watchpoint for the whole operation.
      nss_token_state[id & 15] = 1;
      io(5000);
      int st = nss_token_state[id & 15];
      nss_token_state[id & 15] = st - 1;
    }

    void nss_invalidate(int c) {
      // Certificate revocation check: a single unpaired write that the
      // annotator leaves unannotated; racing a concurrent cache probe is
      // benign (the entry is refetched) but non-serializable — a false
      // positive source (Table 7).
      nss_cert_cache[c] = 0;
    }

    void nss_stats_report(int unused) {
      // Telemetry snapshot-and-reset: single unpaired writes racing the
      // locked updates elsewhere — benign, but non-serializable with them.
      nss_stat_hits = 0;
      nss_stat_misses = 0;
      nss_session_count = nss_session_count + 0;
      nss_bytes_signed = 0;
    }

    void nss_do_handshake(int seed) {
      // Crypto compute: pure local work dominating each iteration, as the
      // real library's RSA/AES kernels dominate its run time.
      int acc = 1;
      for (int k = 0; k < 400; k = k + 1) {
        acc = acc * 1103515245 + seed;
      }
      nss_bytes_signed = nss_bytes_signed + (acc & 1023);
    }

    void nss_worker(int id) {
      int seed = id * 2654435761 + 97;
      for (int i = 0; i < )" + std::to_string(scale.iterations) + R"(; i = i + 1) {
        nss_ensure_init(id);
        seed = seed * 6364136223846793005 + 1442695040888963407;
        nss_session_touch(seed & 63);
        nss_cache_probe((seed * 31) & 31, seed & 63);
        if ((seed & 7) == 0) {
          nss_invalidate((seed * 13) & 31);
        }
        if ((seed & 31) == 1) {
          nss_stats_report(0);
        }
        nss_do_handshake(seed);
        if ((seed & 3) == 0) {
          nss_token_op(id);
        }
      }
    }
  )");
}

}  // namespace

App MakeNss(const LoadScale& scale) {
  return AssembleApp("NSS", NssSource(scale), "nss_worker", scale.workers, {},
                     400'000'000, scale.annotator, scale.prune, scale.correlate);
}

}  // namespace apps
}  // namespace kivati
