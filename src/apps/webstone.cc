#include <string>

#include "apps/workloads.h"

namespace kivati {
namespace apps {
namespace {

// Models Apache serving the Webstone benchmark: a pool of worker threads
// each accepting requests (simulated network I/O), parsing them (local
// compute), updating lock-protected server statistics, and appending to a
// shared access-log buffer whose length field is read-then-written without
// a lock — the classic Apache log-buffer race family. Each request's
// latency is emitted as a mark event (tag 1). Shared-state operations are
// small subroutines, mirroring Apache's ap_update_child_status /
// ap_buffered_log_writer structure.
std::string WebstoneSource(const LoadScale& scale) {
  return std::string(R"(
    sync int ws_stats_lock;
    int ws_scoreboard[16];
    int ws_conn_state[16];
    int ws_requests_served;
    int ws_bytes_sent;
    int ws_log_len;
    int ws_log_buf[256];

    void ws_parse_request(int seed) {
      int acc = seed;
      for (int k = 0; k < 350; k = k + 1) {
        acc = acc * 1103515245 + 12345;
      }
    }

    void ws_update_stats(int size) {
      lock(ws_stats_lock);
      ws_requests_served = ws_requests_served + 1;
      ws_bytes_sent = ws_bytes_sent + size;
      unlock(ws_stats_lock);
    }

    void ws_log_append(int entry) {
      // Unprotected read-modify-write of the log cursor: two workers can
      // interleave here (lost log entries — benign for the benchmark).
      int pos = ws_log_len;
      int formatted = entry;
      for (int k = 0; k < 120; k = k + 1) {
        formatted = formatted * 17 + k;
      }
      ws_log_buf[pos & 255] = formatted;
      ws_log_len = pos + 1;
    }

    void ws_serve_large(int id) {
      // A large-file request: the worker marks its scoreboard slot busy,
      // performs long file I/O, then clears the slot. The write..read pair
      // spans the I/O, holding a watchpoint for the whole request — the
      // realistic source of register exhaustion (Table 8). clear_ar at
      // return bounds the region to this call.
      ws_scoreboard[id & 15] = 1;
      ws_conn_state[id & 15] = 2;
      io(7000);
      int busy = ws_scoreboard[id & 15];
      ws_scoreboard[id & 15] = busy - 1;
      int conn = ws_conn_state[id & 15];
      ws_conn_state[id & 15] = conn - 2;
    }

    void ws_log_rotate(int unused) {
      // Rotating the access log resets the cursor with a single unpaired
      // write; racing an append loses at most one entry (benign).
      ws_log_len = 0;
    }

    void ws_stats_reset(int unused) {
      // mod_status zeroing the counters: unpaired writes racing the locked
      // statistics updates.
      ws_requests_served = 0;
      ws_bytes_sent = 0;
    }

    void ws_worker(int id) {
      int seed = id * 40503 + 3;
      for (int i = 0; i < )" + std::to_string(scale.iterations) + R"(; i = i + 1) {
        int t0 = now();
        // Scoreboard entry (Apache's worker-status slot): written at request
        // start and read back at completion, directly in this function, so
        // the region spans the whole request and pins a watchpoint — the
        // main source of register exhaustion (Table 8).

        // Accept + read the request from the network.
        seed = seed * 6364136223846793005 + 1442695040888963407;
        io(200 + (seed & 511));

        ws_parse_request(seed);

        // Generate the response (simulated file I/O for larger objects).
        int size = 256 + (seed & 4095);
        if (size > 4000) {
          io(300);
        }

        ws_update_stats(size);
        ws_log_append(size);
        if ((seed & 15) == 0) {
          ws_log_rotate(0);
        }
        if ((seed & 31) == 1) {
          ws_stats_reset(0);
        }

        if ((seed & 3) == 0) {
          ws_serve_large(id);
        }

        int t1 = now();
        mark(1, t1 - t0);
      }
    }
  )");
}

}  // namespace

App MakeWebstone(const LoadScale& scale) {
  return AssembleApp("Webstone", WebstoneSource(scale), "ws_worker", scale.workers, {},
                     400'000'000, scale.annotator, scale.prune, scale.correlate);
}

}  // namespace apps
}  // namespace kivati
