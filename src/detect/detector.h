// The common detector-backend interface (docs/detectors.md).
//
// Kivati's watchpoint pipeline and the happens-before/lockset oracle
// (hb_detector.h) are different detection technologies with different cost
// models; this header gives them one report vocabulary so experiment
// harnesses (kivati compare, src/exp) can tabulate them side by side:
//
//  * Finding — one detected problem, normalized across backends.
//  * DetectorStats — simulated work counters; overhead_ops is each backend's
//    own unit of per-run detection work (kernel crossings + traps for
//    Kivati, shadow-memory + sync operations for HB), the numerator of the
//    compare command's overhead ratio.
//  * Detector — read-side interface every backend implements.
//  * KivatiTraceDetector — adapter presenting a completed Kivati run (its
//    ViolationRecords and RuntimeStats counters) as a Detector.
#ifndef KIVATI_DETECT_DETECTOR_H_
#define KIVATI_DETECT_DETECTOR_H_

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "common/types.h"
#include "trace/trace.h"

namespace kivati {
namespace detect {

// One detected problem. `first` is the earlier access of the conflicting
// pair (for Kivati, the local access opening the atomic region), `second`
// the access whose arrival triggered the report (for Kivati, the violating
// remote access).
struct Finding {
  std::string backend;  // "kivati" | "hb"
  // "atomicity-violation" (Kivati), "hb-race" (vector-clock proven),
  // "lockset-only" (raw Eraser lockset empty but HB-ordered — the classic
  // lockset false-positive class).
  std::string kind;
  Addr addr = kInvalidAddr;  // shared variable address
  unsigned size = 0;
  ArId ar = kInvalidAr;  // Kivati findings only

  ThreadId first_thread = kInvalidThread;
  ProgramCounter first_pc = 0;
  AccessType first = AccessType::kRead;

  ThreadId second_thread = kInvalidThread;
  ProgramCounter second_pc = 0;
  AccessType second = AccessType::kRead;

  Cycles when = 0;       // virtual time of the triggering access
  std::string pattern;   // "R-W-W" (Kivati, ViolationPattern) or "W-W" etc.
};

std::string ToString(const Finding& finding);

// Cumulative per-run work counters. All simulated (deterministic).
struct DetectorStats {
  // Shared-data accesses the backend inspected (HB backends see every one;
  // Kivati's is 0 — it only pays on annotations and traps, which is the
  // point of the comparison).
  std::uint64_t accesses_observed = 0;
  // Shadow-memory work: vector-clock slots compared/updated plus lockset
  // intersection elements, summed over all accesses.
  std::uint64_t shadow_ops = 0;
  // Synchronization edges processed (acquire, release, spawn, join).
  std::uint64_t sync_ops = 0;
  // The backend's total simulated detection work in its own units — see the
  // header comment. Filled by each backend's stats() accessor.
  std::uint64_t overhead_ops = 0;
};

class Detector {
 public:
  virtual ~Detector() = default;
  virtual const char* name() const = 0;
  virtual const std::vector<Finding>& findings() const = 0;
  virtual const DetectorStats& stats() const = 0;
};

// Unique addresses with at least one finding whose kind is in `kinds`
// (empty = all kinds). The compare command's unit of "bugs found": findings
// are deduplicated per backend to the shared variables they implicate.
std::set<Addr> FindingAddrs(const Detector& detector,
                            const std::set<std::string>& kinds = {});

// Adapter over a finished run's Trace: one Finding per ViolationRecord
// (backend "kivati", kind "atomicity-violation", pattern via the canonical
// ViolationPattern), overhead_ops = kernel crossings + watchpoint traps.
class KivatiTraceDetector : public Detector {
 public:
  explicit KivatiTraceDetector(const Trace& trace);

  const char* name() const override { return "kivati"; }
  const std::vector<Finding>& findings() const override { return findings_; }
  const DetectorStats& stats() const override { return stats_; }

 private:
  std::vector<Finding> findings_;
  DetectorStats stats_;
};

}  // namespace detect
}  // namespace kivati

#endif  // KIVATI_DETECT_DETECTOR_H_
