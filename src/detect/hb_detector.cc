#include "detect/hb_detector.h"

namespace kivati {
namespace detect {

namespace {

char TypeChar(AccessType type) { return type == AccessType::kWrite ? 'W' : 'R'; }

ProgramCounter PcAt(const std::vector<ProgramCounter>& pcs, ThreadId tid) {
  return tid < pcs.size() ? pcs[tid] : 0;
}

void SetPc(std::vector<ProgramCounter>& pcs, ThreadId tid, ProgramCounter pc) {
  if (pcs.size() <= tid) {
    pcs.resize(tid + 1, 0);
  }
  pcs[tid] = pc;
}

}  // namespace

HbLocksetDetector::HbLocksetDetector(HbDetectorOptions options)
    : options_(std::move(options)), lock_addrs_(options_.lock_addrs) {}

HbLocksetDetector::ThreadState& HbLocksetDetector::Thread(ThreadId tid) {
  if (threads_.size() <= tid) {
    threads_.resize(tid + 1);
  }
  ThreadState& t = threads_[tid];
  if (!t.started) {
    // A thread's first component: its own time starts at 1. Threads first
    // seen without a spawn edge (the workload's root threads) are mutually
    // unordered, which is exactly right — the harness starts them all.
    t.clock.Set(tid, 1);
    t.started = true;
  }
  return t;
}

void HbLocksetDetector::OnEvent(const TraceEvent& event) {
  switch (event.kind) {
    case EventKind::kThreadSpawn:
      OnSpawn(event);
      break;
    case EventKind::kThreadJoin:
      OnJoin(event);
      break;
    case EventKind::kSharedRead:
      OnAccess(event, AccessType::kRead);
      break;
    case EventKind::kSharedWrite:
      OnAccess(event, AccessType::kWrite);
      break;
    default:
      break;
  }
}

void HbLocksetDetector::OnSpawn(const TraceEvent& event) {
  const ThreadId parent_tid = event.thread;
  const ThreadId child_tid = static_cast<ThreadId>(event.detail);
  Thread(parent_tid);
  Thread(child_tid);  // may reallocate threads_: take references after both
  ThreadState& parent = threads_[parent_tid];
  ThreadState& child = threads_[child_tid];
  stats_.shadow_ops += child.clock.Join(parent.clock);
  parent.clock.Tick(parent_tid);
  ++stats_.sync_ops;
}

void HbLocksetDetector::OnJoin(const TraceEvent& event) {
  const ThreadId joiner_tid = event.thread;
  const ThreadId target_tid = static_cast<ThreadId>(event.detail);
  Thread(joiner_tid);
  Thread(target_tid);
  ThreadState& joiner = threads_[joiner_tid];
  ThreadState& target = threads_[target_tid];
  stats_.shadow_ops += joiner.clock.Join(target.clock);
  target.clock.Tick(target_tid);
  ++stats_.sync_ops;
}

bool HbLocksetDetector::HandleLockWord(const TraceEvent& event, AccessType type) {
  const bool atomic = AccessDetailAtomic(event.detail);
  if (atomic) {
    // Dynamic lock discovery: any address touched by an atomic RMW is a
    // sync object from now on (the static trusted set seeds lock_addrs_).
    lock_addrs_.insert(event.addr);
  }
  if (lock_addrs_.count(event.addr) == 0) {
    return false;
  }
  ThreadState& t = Thread(event.thread);
  if (type == AccessType::kRead) {
    if (atomic && event.value == 0) {
      // xchg read the free value: a successful test-and-set. Acquire edge:
      // the thread inherits everything the last releaser had seen.
      stats_.shadow_ops += t.clock.Join(lock_vc_[event.addr]);
      t.held.insert(event.addr);
      ++stats_.sync_ops;
    }
    // Plain reads (spin peeks) and failed acquires (read a 1) carry no edge.
  } else {
    if (!atomic && event.value == 0) {
      // Plain store of the free value: release. Publish the thread's clock
      // to the lock and advance so later local events are not released.
      stats_.shadow_ops += lock_vc_[event.addr].Assign(t.clock);
      t.clock.Tick(event.thread);
      t.held.erase(event.addr);
      ++stats_.sync_ops;
    }
    // The xchg's write half (storing 1) is part of the acquire: no edge.
  }
  return true;
}

void HbLocksetDetector::OnAccess(const TraceEvent& event, AccessType type) {
  if (HandleLockWord(event, type)) {
    return;
  }
  ++stats_.accesses_observed;
  ThreadState& t = Thread(event.thread);
  Shadow& shadow = shadow_[event.addr];
  shadow.size = AccessDetailSize(event.detail);
  HbCheck(shadow, event, type, t);
  if (options_.lockset) {
    LocksetCheck(shadow, event, type, t);
  }
}

void HbLocksetDetector::HbCheck(Shadow& shadow, const TraceEvent& event,
                                AccessType type, ThreadState& thread) {
  const ThreadId tid = event.thread;
  // A thread's own entries never exceed its current clock, so any witness
  // FirstExceeding returns is a different, concurrent thread.
  stats_.shadow_ops += shadow.write_vc.size();
  ThreadId witness = shadow.write_vc.FirstExceeding(thread.clock);
  AccessType prior = AccessType::kWrite;
  if (type == AccessType::kWrite && witness == kInvalidThread) {
    stats_.shadow_ops += shadow.read_vc.size();
    witness = shadow.read_vc.FirstExceeding(thread.clock);
    prior = AccessType::kRead;
  }
  if (witness != kInvalidThread && !shadow.reported_hb) {
    const std::vector<ProgramCounter>& pcs =
        prior == AccessType::kWrite ? shadow.write_pc : shadow.read_pc;
    Report("hb-race", shadow, event, type, witness, PcAt(pcs, witness), prior);
    shadow.reported_hb = true;
    ++hb_races_;
  }
  ++stats_.shadow_ops;
  if (type == AccessType::kWrite) {
    shadow.write_vc.Set(tid, thread.clock.Get(tid));
    SetPc(shadow.write_pc, tid, event.pc);
  } else {
    shadow.read_vc.Set(tid, thread.clock.Get(tid));
    SetPc(shadow.read_pc, tid, event.pc);
  }
}

void HbLocksetDetector::LocksetCheck(Shadow& shadow, const TraceEvent& event,
                                     AccessType type, const ThreadState& thread) {
  const ThreadId tid = event.thread;
  switch (shadow.ls_state) {
    case LsState::kVirgin:
      shadow.ls_state = LsState::kExclusive;
      shadow.owner = tid;
      break;
    case LsState::kExclusive:
      if (tid == shadow.owner) {
        break;
      }
      // Second thread arrives: candidate set starts as its held locks.
      shadow.candidate = thread.held;
      shadow.ls_state =
          type == AccessType::kWrite ? LsState::kSharedModified : LsState::kShared;
      stats_.shadow_ops += thread.held.size();
      break;
    case LsState::kShared:
    case LsState::kSharedModified:
      stats_.shadow_ops += shadow.candidate.size() + thread.held.size();
      for (auto it = shadow.candidate.begin(); it != shadow.candidate.end();) {
        if (thread.held.count(*it) == 0) {
          it = shadow.candidate.erase(it);
        } else {
          ++it;
        }
      }
      if (type == AccessType::kWrite) {
        shadow.ls_state = LsState::kSharedModified;
      }
      break;
  }
  // Raw Eraser verdict: shared-modified with an empty candidate set. Only
  // interesting when HB proved an ordering (otherwise the hb-race finding
  // already covers the address): these are the lockset false positives.
  if (shadow.ls_state == LsState::kSharedModified && shadow.candidate.empty() &&
      !shadow.reported_lockset && !shadow.reported_hb) {
    ProgramCounter prior_pc = PcAt(shadow.write_pc, shadow.owner);
    AccessType prior = AccessType::kWrite;
    if (prior_pc == 0) {
      prior_pc = PcAt(shadow.read_pc, shadow.owner);
      prior = AccessType::kRead;
    }
    Report("lockset-only", shadow, event, type, shadow.owner, prior_pc, prior);
    shadow.reported_lockset = true;
    ++lockset_only_;
  }
}

void HbLocksetDetector::Report(const std::string& kind, const Shadow& shadow,
                               const TraceEvent& event, AccessType type,
                               ThreadId prior_thread, ProgramCounter prior_pc,
                               AccessType prior_type) {
  Finding finding;
  finding.backend = "hb";
  finding.kind = kind;
  finding.addr = event.addr;
  finding.size = shadow.size;
  finding.first_thread = prior_thread;
  finding.first_pc = prior_pc;
  finding.first = prior_type;
  finding.second_thread = event.thread;
  finding.second_pc = event.pc;
  finding.second = type;
  finding.when = event.when;
  finding.pattern = std::string(1, TypeChar(prior_type)) + "-" + TypeChar(type);
  findings_.push_back(std::move(finding));
}

const DetectorStats& HbLocksetDetector::stats() const {
  stats_.overhead_ops = stats_.shadow_ops + stats_.sync_ops;
  return stats_;
}

}  // namespace detect
}  // namespace kivati
