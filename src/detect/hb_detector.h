// Happens-before / lockset oracle over the access-level trace stream.
//
// The watchpoint-free comparison backend the paper argues against on cost
// grounds (§5 related work: happens-before race detectors instrument every
// shared access). It consumes kSharedRead/kSharedWrite/kThreadSpawn/
// kThreadJoin events from a TraceHub and maintains classic dynamic-race
// shadow state:
//
//  * per-thread and per-lock vector clocks, with acquire/release/spawn/join
//    sync edges (acquire = atomic xchg reading 0 at a lock word, release =
//    plain store of 0 — exactly how compile/codegen lowers lock()/unlock());
//  * per-address read/write vector clocks for the happens-before check
//    (a conflicting pair unordered by HB is a race: kind "hb-race");
//  * the Eraser lockset state machine (virgin -> exclusive -> shared ->
//    shared-modified, candidate-set intersection) run in parallel; an empty
//    lockset on a shared-modified address that the vector clocks DID order
//    is reported as kind "lockset-only" — the false-positive class HB
//    refinement exists to suppress.
//
// Lock words come from the compiled program's trusted-lock set
// (CompiledProgram::lock_addrs) plus any address dynamically used in an
// atomic read-modify-write; lock words are sync objects, never data, so
// they are excluded from both checks. Findings are deduplicated per
// (address, kind): the first witness wins, matching how the compare command
// counts bugs per shared variable.
#ifndef KIVATI_DETECT_HB_DETECTOR_H_
#define KIVATI_DETECT_HB_DETECTOR_H_

#include <cstdint>
#include <set>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/types.h"
#include "detect/detector.h"
#include "detect/vector_clock.h"
#include "trace/event_log.h"
#include "trace/sink.h"

namespace kivati {
namespace detect {

struct HbDetectorOptions {
  // Trusted lock addresses known statically (CompiledProgram::lock_addrs).
  // Addresses xchg'd at runtime are added dynamically.
  std::unordered_set<Addr> lock_addrs;
  // Also run the raw Eraser lockset pass and report "lockset-only" findings
  // (addresses with an empty lockset that HB nevertheless ordered).
  bool lockset = true;
};

class HbLocksetDetector : public TraceSink, public Detector {
 public:
  explicit HbLocksetDetector(HbDetectorOptions options = {});

  // TraceSink: subscribe to the access-level kinds.
  std::uint32_t wants_mask() const override {
    return kAccessEventKinds | kEventKindBit(EventKind::kThreadSpawn) |
           kEventKindBit(EventKind::kThreadJoin);
  }
  void OnEvent(const TraceEvent& event) override;

  // Detector.
  const char* name() const override { return "hb"; }
  const std::vector<Finding>& findings() const override { return findings_; }
  const DetectorStats& stats() const override;

  // Finding counts by kind, for reports.
  std::size_t hb_races() const { return hb_races_; }
  std::size_t lockset_only() const { return lockset_only_; }

 private:
  // Eraser's per-address sharing state.
  enum class LsState : std::uint8_t { kVirgin, kExclusive, kShared, kSharedModified };

  struct ThreadState {
    VectorClock clock;
    std::set<Addr> held;  // trusted locks currently held
    bool started = false;
  };

  struct Shadow {
    VectorClock read_vc;   // per-thread clock of its last read
    VectorClock write_vc;  // per-thread clock of its last write
    // Last pc per thread for each access type, parallel to the clocks
    // (grown on demand), so reports name the actual prior conflicting site.
    std::vector<ProgramCounter> read_pc;
    std::vector<ProgramCounter> write_pc;
    unsigned size = 0;
    // Eraser state.
    LsState ls_state = LsState::kVirgin;
    ThreadId owner = kInvalidThread;
    std::set<Addr> candidate;  // candidate lockset, valid once shared
    bool reported_hb = false;
    bool reported_lockset = false;
  };

  ThreadState& Thread(ThreadId tid);
  void OnSpawn(const TraceEvent& event);
  void OnJoin(const TraceEvent& event);
  void OnAccess(const TraceEvent& event, AccessType type);
  // Lock-word handling; returns true when the event was a sync access (and
  // must not reach the data checks).
  bool HandleLockWord(const TraceEvent& event, AccessType type);
  void HbCheck(Shadow& shadow, const TraceEvent& event, AccessType type,
               ThreadState& thread);
  void LocksetCheck(Shadow& shadow, const TraceEvent& event, AccessType type,
                    const ThreadState& thread);
  void Report(const std::string& kind, const Shadow& shadow,
              const TraceEvent& event, AccessType type, ThreadId prior_thread,
              ProgramCounter prior_pc, AccessType prior_type);

  HbDetectorOptions options_;
  std::unordered_set<Addr> lock_addrs_;            // static ∪ dynamic
  std::unordered_map<Addr, VectorClock> lock_vc_;  // release clocks
  std::vector<ThreadState> threads_;
  std::unordered_map<Addr, Shadow> shadow_;
  std::vector<Finding> findings_;
  std::size_t hb_races_ = 0;
  std::size_t lockset_only_ = 0;
  mutable DetectorStats stats_;  // stats() derives overhead_ops on read
};

}  // namespace detect
}  // namespace kivati

#endif  // KIVATI_DETECT_HB_DETECTOR_H_
