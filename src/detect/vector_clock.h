// Vector clocks for the happens-before detector backend (docs/detectors.md).
//
// A clock maps ThreadId -> logical time. Storage is a dense vector indexed by
// tid (thread ids are small and dense in the simulator), growing on demand;
// absent entries read as 0. Mutating and comparing operations return the
// number of slots they touched so the detector can account simulated
// per-access shadow work (the compare command's overhead metric).
#ifndef KIVATI_DETECT_VECTOR_CLOCK_H_
#define KIVATI_DETECT_VECTOR_CLOCK_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/types.h"

namespace kivati {
namespace detect {

class VectorClock {
 public:
  std::uint64_t Get(ThreadId tid) const {
    return tid < clock_.size() ? clock_[tid] : 0;
  }

  void Set(ThreadId tid, std::uint64_t value) {
    Grow(tid + 1);
    clock_[tid] = value;
  }

  void Tick(ThreadId tid) {
    Grow(tid + 1);
    ++clock_[tid];
  }

  // this := this ⊔ other (component-wise max). Returns slots touched.
  std::size_t Join(const VectorClock& other) {
    Grow(other.clock_.size());
    for (std::size_t i = 0; i < other.clock_.size(); ++i) {
      clock_[i] = std::max(clock_[i], other.clock_[i]);
    }
    return other.clock_.size();
  }

  // this := other. Returns slots touched.
  std::size_t Assign(const VectorClock& other) {
    clock_ = other.clock_;
    return clock_.size();
  }

  // true iff this[u] <= other[u] for every thread u — i.e. every event this
  // clock summarizes happens-before the point `other` describes.
  bool LeqAll(const VectorClock& other) const {
    for (std::size_t i = 0; i < clock_.size(); ++i) {
      if (clock_[i] > other.Get(static_cast<ThreadId>(i))) {
        return false;
      }
    }
    return true;
  }

  // The first thread u with this[u] > other[u] (a witness that `this` is not
  // ordered before `other`), or kInvalidThread when ordered.
  ThreadId FirstExceeding(const VectorClock& other) const {
    for (std::size_t i = 0; i < clock_.size(); ++i) {
      if (clock_[i] > other.Get(static_cast<ThreadId>(i))) {
        return static_cast<ThreadId>(i);
      }
    }
    return kInvalidThread;
  }

  std::size_t size() const { return clock_.size(); }

 private:
  void Grow(std::size_t n) {
    if (clock_.size() < n) {
      clock_.resize(n, 0);
    }
  }

  std::vector<std::uint64_t> clock_;
};

}  // namespace detect
}  // namespace kivati

#endif  // KIVATI_DETECT_VECTOR_CLOCK_H_
