#include "detect/detector.h"

#include <sstream>

#include "trace/report.h"

namespace kivati {
namespace detect {

namespace {

char TypeChar(AccessType type) { return type == AccessType::kWrite ? 'W' : 'R'; }

}  // namespace

std::string ToString(const Finding& finding) {
  std::ostringstream out;
  out << finding.backend << " " << finding.kind << " addr=0x" << std::hex
      << finding.addr << std::dec;
  if (finding.ar != kInvalidAr) {
    out << " ar=" << finding.ar;
  }
  out << " pattern=" << finding.pattern << " t" << finding.first_thread << "@pc="
      << finding.first_pc << "(" << TypeChar(finding.first) << ") vs t"
      << finding.second_thread << "@pc=" << finding.second_pc << "("
      << TypeChar(finding.second) << ") @" << finding.when;
  return out.str();
}

std::set<Addr> FindingAddrs(const Detector& detector,
                            const std::set<std::string>& kinds) {
  std::set<Addr> addrs;
  for (const Finding& finding : detector.findings()) {
    if (kinds.empty() || kinds.count(finding.kind) != 0) {
      addrs.insert(finding.addr);
    }
  }
  return addrs;
}

KivatiTraceDetector::KivatiTraceDetector(const Trace& trace) {
  for (const ViolationRecord& v : trace.violations()) {
    Finding finding;
    finding.backend = "kivati";
    finding.kind = "atomicity-violation";
    finding.addr = v.addr;
    finding.size = v.size;
    finding.ar = v.ar_id;
    finding.first_thread = v.local_thread;
    finding.first_pc = v.first_pc;
    finding.first = v.first;
    finding.second_thread = v.remote_thread;
    finding.second_pc = v.remote_pc;
    finding.second = v.remote;
    finding.when = v.when;
    finding.pattern = ViolationPattern(v);
    findings_.push_back(std::move(finding));
  }
  const RuntimeStats& stats = trace.stats();
  stats_.overhead_ops = stats.kernel_entries_total() + stats.watchpoint_traps;
}

}  // namespace detect
}  // namespace kivati
