#include "hw/debug_registers.h"

#include <algorithm>
#include <cassert>

namespace kivati {

DebugRegisterFile::DebugRegisterFile(unsigned count) : regs_(count) {
  assert(count >= 1 && count <= kMaxWatchpointCount);
}

void DebugRegisterFile::Set(unsigned slot, Addr addr, unsigned size, WatchType watch) {
  assert(slot < regs_.size());
  assert(size == 1 || size == 2 || size == 4 || size == 8);
  assert(watch != WatchType::kNone);
  regs_[slot] = WatchpointConfig{true, addr, size, watch};
  ++generation_;
  RecomputeSummary();
}

void DebugRegisterFile::Clear(unsigned slot) {
  assert(slot < regs_.size());
  regs_[slot] = WatchpointConfig{};
  ++generation_;
  RecomputeSummary();
}

void DebugRegisterFile::ClearAll() {
  for (auto& reg : regs_) {
    reg = WatchpointConfig{};
  }
  ++generation_;
  RecomputeSummary();
}

void DebugRegisterFile::RecomputeSummary() {
  armed_count_ = 0;
  armed_min_addr_ = ~Addr{0};
  armed_max_end_ = 0;
  for (const WatchpointConfig& reg : regs_) {
    if (!reg.enabled) {
      continue;
    }
    ++armed_count_;
    armed_min_addr_ = std::min(armed_min_addr_, reg.addr);
    armed_max_end_ = std::max(armed_max_end_, reg.addr + reg.size);
  }
}

std::optional<unsigned> DebugRegisterFile::MatchSlots(Addr addr, unsigned size,
                                                      AccessType type) const {
  for (unsigned slot = 0; slot < regs_.size(); ++slot) {
    const WatchpointConfig& reg = regs_[slot];
    if (!reg.enabled || !Matches(reg.watch, type)) {
      continue;
    }
    // Range overlap, as on x86 where any byte of the access inside the
    // watched region raises the trap.
    const bool overlaps = addr < reg.addr + reg.size && reg.addr < addr + size;
    if (overlaps) {
      return slot;
    }
  }
  return std::nullopt;
}

bool DebugRegisterFile::AnyEnabledOverlap(Addr lo, Addr hi) const {
  for (const WatchpointConfig& reg : regs_) {
    if (reg.enabled && lo < reg.addr + reg.size && reg.addr < hi) {
      return true;
    }
  }
  return false;
}

void DebugRegisterFile::CopyFrom(const DebugRegisterFile& other) {
  assert(regs_.size() == other.regs_.size());
  regs_ = other.regs_;
  generation_ = other.generation_;
  armed_count_ = other.armed_count_;
  armed_min_addr_ = other.armed_min_addr_;
  armed_max_end_ = other.armed_max_end_;
}

}  // namespace kivati
