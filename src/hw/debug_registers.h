// Model of per-core hardware watchpoint (debug) registers.
//
// Mirrors the x86 DR0-DR3/DR7 facility that Kivati programs from ring 0:
// each core has a small bank of watchpoints, each configured with a byte
// address, an access width (1, 2, 4 or 8 bytes) and a trap condition (read,
// write, or both). The bank size defaults to 4, as on Intel/AMD x86, but is
// configurable because the paper's Table 9 sweeps 2-12 registers.
//
// Trap delivery semantics are modelled explicitly:
//   kAfter  — the trap is raised after the accessing instruction retires
//             (x86, ARM): the access has committed and must be *undone* to
//             be reordered. This is the hard case the paper solves.
//   kBefore — the trap is raised before the access commits (SPARC): the
//             access can simply be delayed. Provided for the ablation bench.
#ifndef KIVATI_HW_DEBUG_REGISTERS_H_
#define KIVATI_HW_DEBUG_REGISTERS_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "common/types.h"

namespace kivati {

inline constexpr unsigned kDefaultWatchpointCount = 4;  // x86
inline constexpr unsigned kMaxWatchpointCount = 16;

enum class TrapDelivery : std::uint8_t {
  kAfter,   // x86/ARM: trap after the access has committed
  kBefore,  // SPARC: trap before the access commits
};

struct WatchpointConfig {
  bool enabled = false;
  Addr addr = 0;
  unsigned size = 0;          // watched width in bytes
  WatchType watch = WatchType::kNone;
};

class DebugRegisterFile {
 public:
  explicit DebugRegisterFile(unsigned count = kDefaultWatchpointCount);

  unsigned count() const { return static_cast<unsigned>(regs_.size()); }
  const WatchpointConfig& Get(unsigned slot) const { return regs_[slot]; }

  // Programs slot `slot`; any previous configuration is replaced.
  void Set(unsigned slot, Addr addr, unsigned size, WatchType watch);
  // Disables slot `slot`.
  void Clear(unsigned slot);
  void ClearAll();

  // Returns the lowest-numbered enabled slot whose watched range overlaps
  // [addr, addr+size) and whose trap condition matches `type`.
  std::optional<unsigned> Match(Addr addr, unsigned size, AccessType type) const;

  // Copies the full register image from `other` (the cross-core sync step).
  void CopyFrom(const DebugRegisterFile& other);

  // Monotonic generation number, bumped on every mutation. Cores compare
  // generations against the kernel's canonical image to decide whether an
  // opportunistic sync is needed.
  std::uint64_t generation() const { return generation_; }

 private:
  std::vector<WatchpointConfig> regs_;
  std::uint64_t generation_ = 0;
};

}  // namespace kivati

#endif  // KIVATI_HW_DEBUG_REGISTERS_H_
