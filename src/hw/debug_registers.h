// Model of per-core hardware watchpoint (debug) registers.
//
// Mirrors the x86 DR0-DR3/DR7 facility that Kivati programs from ring 0:
// each core has a small bank of watchpoints, each configured with a byte
// address, an access width (1, 2, 4 or 8 bytes) and a trap condition (read,
// write, or both). The bank size defaults to 4, as on Intel/AMD x86, but is
// configurable because the paper's Table 9 sweeps 2-12 registers.
//
// Trap delivery semantics are modelled explicitly:
//   kAfter  — the trap is raised after the accessing instruction retires
//             (x86, ARM): the access has committed and must be *undone* to
//             be reordered. This is the hard case the paper solves.
//   kBefore — the trap is raised before the access commits (SPARC): the
//             access can simply be delayed. Provided for the ablation bench.
#ifndef KIVATI_HW_DEBUG_REGISTERS_H_
#define KIVATI_HW_DEBUG_REGISTERS_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "common/types.h"

namespace kivati {

inline constexpr unsigned kDefaultWatchpointCount = 4;  // x86
inline constexpr unsigned kMaxWatchpointCount = 16;

enum class TrapDelivery : std::uint8_t {
  kAfter,   // x86/ARM: trap after the access has committed
  kBefore,  // SPARC: trap before the access commits
};

struct WatchpointConfig {
  bool enabled = false;
  Addr addr = 0;
  unsigned size = 0;          // watched width in bytes
  WatchType watch = WatchType::kNone;
};

class DebugRegisterFile {
 public:
  explicit DebugRegisterFile(unsigned count = kDefaultWatchpointCount);

  unsigned count() const { return static_cast<unsigned>(regs_.size()); }
  const WatchpointConfig& Get(unsigned slot) const { return regs_[slot]; }

  // Programs slot `slot`; any previous configuration is replaced.
  void Set(unsigned slot, Addr addr, unsigned size, WatchType watch);
  // Disables slot `slot`.
  void Clear(unsigned slot);
  void ClearAll();

  // Returns the lowest-numbered enabled slot whose watched range overlaps
  // [addr, addr+size) and whose trap condition matches `type`. Inline so the
  // no-overlap rejection (the per-access common case in the interpreter)
  // costs one hull test and no function call.
  std::optional<unsigned> Match(Addr addr, unsigned size, AccessType type) const {
    if (!MayMatch(addr, size)) {
      return std::nullopt;
    }
    return MatchSlots(addr, size, type);
  }

  // --- Armed summary (interpreter fast filter, docs/performance.md) --------
  // The simulator executes millions of accesses against at most `count()`
  // armed slots; these O(1) tests let it skip the per-access Match scan and
  // the old-value capture when no armed watchpoint can possibly overlap.

  // True if any slot is enabled.
  bool any_armed() const { return armed_count_ != 0; }

  // Conservative overlap test: false only when NO enabled slot can match an
  // access of [addr, addr+size) of any type. A superset of Match: whenever
  // Match returns a slot, MayMatch is true (hw_test checks the property).
  bool MayMatch(Addr addr, unsigned size) const {
    return armed_count_ != 0 && addr < armed_max_end_ && armed_min_addr_ < addr + size;
  }

  // Exact, type-agnostic overlap scan: true if any enabled slot's watched
  // range intersects [lo, hi). The block-translation engine's hoisting
  // proof (exec/block_translate.h) tests each static block access with
  // this; verdicts are memoized against generation(), so the scan is off
  // the per-instruction path.
  bool AnyEnabledOverlap(Addr lo, Addr hi) const;

  // Copies the full register image from `other` (the cross-core sync step).
  void CopyFrom(const DebugRegisterFile& other);

  // Monotonic generation number, bumped on every mutation. Cores compare
  // generations against the kernel's canonical image to decide whether an
  // opportunistic sync is needed.
  std::uint64_t generation() const { return generation_; }

 private:
  std::optional<unsigned> MatchSlots(Addr addr, unsigned size, AccessType type) const;
  void RecomputeSummary();

  std::vector<WatchpointConfig> regs_;
  std::uint64_t generation_ = 0;
  // Summary of the enabled slots: count plus the covered address hull
  // [armed_min_addr_, armed_max_end_). Maintained on every mutation.
  unsigned armed_count_ = 0;
  Addr armed_min_addr_ = 0;
  Addr armed_max_end_ = 0;
};

}  // namespace kivati

#endif  // KIVATI_HW_DEBUG_REGISTERS_H_
