// The block-translation engine's fused execution loop (Machine member; see
// exec/block_translate.h for the translation itself).
//
// Byte-identity with the generic loop is the design constraint: with the
// default cost model every user instruction costs one cycle, so two busy
// cores leapfrog each other every instruction and the *global* interleaving
// — which racy shared-memory values and ScheduleTrace instruction stamps
// depend on — cannot be reordered. The fused loop therefore replicates
// Run's discrete-event iteration exactly (min-clock core pick, deadline
// check, preemption poll) over predecoded ops, and hoists only the
// per-instruction *overhead*: the PC->index lookup, the fat Instruction
// load, the access-list build, the trap Match scans, the trace/event mask
// tests, and the pending-extra accounting — none of which can observe
// anything for ops proven unable to trap.
//
// Every iteration boundary leaves the machine in exactly the state the
// generic loop would have at the same point, so the engine may bail at any
// iteration: barriers (syscalls, annotations, halt, rep-movs), possible
// watchpoint hits (the outer ExecuteOne redoes the access with the full
// Match/undo machinery), quantum expiry and blocked threads (outer
// Reschedule), timer deadlines (outer WakeExpiredTimers), and invalid PCs
// (outer error/exit handling). Deoptimization triggers that hold for a
// whole Run call (replaying/guided controller, address tracing) are
// decided in Run; the access-level sink mask is re-checked here on every
// entry because sinks may subscribe between Run calls.
#include <algorithm>

#include "sched/machine.h"

namespace kivati {

namespace {

// Conservative pre-execution filter for ops inside non-check-free blocks:
// true when some access of `op` might overlap an armed watchpoint range
// (superset of DebugRegisterFile::Match, so a false return proves no trap
// — and no old-value capture — can be needed; mirrors CollectAccesses).
bool MayTouchArmed(const exec::TransOp& op, const ThreadContext& t,
                   const DebugRegisterFile& regs) {
  const auto ea = [&t](RegId base, std::int64_t offset) {
    const std::uint64_t b = base == kNoReg ? 0 : ReadReg(t, base);
    return b + static_cast<std::uint64_t>(offset);
  };
  switch (op.kind) {
    case exec::FusedKind::kLoad:
    case exec::FusedKind::kStore:
    case exec::FusedKind::kXchg:
      return regs.MayMatch(ea(op.base, op.a), op.size);
    case exec::FusedKind::kMovM:
      return regs.MayMatch(ea(op.base2, op.b), op.size) ||
             regs.MayMatch(ea(op.base, op.a), op.size);
    case exec::FusedKind::kPushM:
      return regs.MayMatch(ea(op.base, op.a), op.size) || regs.MayMatch(t.sp - 8, 8);
    case exec::FusedKind::kCallInd:
      return regs.MayMatch(ea(op.base, op.a), 8) || regs.MayMatch(t.sp - 8, 8);
    case exec::FusedKind::kPush:
    case exec::FusedKind::kCall:
      return regs.MayMatch(t.sp - 8, 8);
    case exec::FusedKind::kPop:
    case exec::FusedKind::kRet:
      return regs.MayMatch(t.sp, 8);
    default:
      return false;  // no memory access
  }
}

// Executes one fused op (anything but kBarrier) and returns the cursor of
// the next op — kNoOp when a dynamic target (indirect call, return) has no
// translation, in which case the caller re-derives state from the PC. Shared
// by the general interleaved loop and the two-core lockstep loop so the
// semantics exist exactly once.
inline std::uint32_t ExecFusedOp(const exec::TransOp* ops, std::uint32_t cur,
                                 ThreadContext& t, AddressSpace& memory,
                                 const exec::BlockTranslation& trans) {
  const exec::TransOp& op = ops[cur];
  std::uint32_t next = cur + 1;
  switch (op.kind) {
    case exec::FusedKind::kNop:
      t.pc = op.next_pc;
      break;
    case exec::FusedKind::kLoadImm:
      WriteReg(t, op.rd, static_cast<std::uint64_t>(op.a));
      t.pc = op.next_pc;
      break;
    case exec::FusedKind::kMov:
      WriteReg(t, op.rd, ReadReg(t, op.rs1));
      t.pc = op.next_pc;
      break;
    case exec::FusedKind::kLoad: {
      const Addr ea = (op.base == kNoReg ? 0 : ReadReg(t, op.base)) +
                      static_cast<std::uint64_t>(op.a);
      WriteReg(t, op.rd, memory.Read(ea, op.size));
      t.pc = op.next_pc;
      break;
    }
    case exec::FusedKind::kStore: {
      const Addr ea = (op.base == kNoReg ? 0 : ReadReg(t, op.base)) +
                      static_cast<std::uint64_t>(op.a);
      memory.Write(ea, op.size, ReadReg(t, op.rs1));
      t.pc = op.next_pc;
      break;
    }
    case exec::FusedKind::kMovM: {
      const Addr src = (op.base2 == kNoReg ? 0 : ReadReg(t, op.base2)) +
                       static_cast<std::uint64_t>(op.b);
      const Addr dst = (op.base == kNoReg ? 0 : ReadReg(t, op.base)) +
                       static_cast<std::uint64_t>(op.a);
      memory.Write(dst, op.size, memory.Read(src, op.size));
      t.pc = op.next_pc;
      break;
    }
    case exec::FusedKind::kXchg: {
      const Addr ea = (op.base == kNoReg ? 0 : ReadReg(t, op.base)) +
                      static_cast<std::uint64_t>(op.a);
      const std::uint64_t old = memory.Read(ea, op.size);
      memory.Write(ea, op.size, ReadReg(t, op.rs1));
      WriteReg(t, op.rd, old);
      t.pc = op.next_pc;
      break;
    }
    case exec::FusedKind::kAdd:
      WriteReg(t, op.rd, ReadReg(t, op.rs1) + ReadReg(t, op.rs2));
      t.pc = op.next_pc;
      break;
    case exec::FusedKind::kSub:
      WriteReg(t, op.rd, ReadReg(t, op.rs1) - ReadReg(t, op.rs2));
      t.pc = op.next_pc;
      break;
    case exec::FusedKind::kMul:
      WriteReg(t, op.rd, ReadReg(t, op.rs1) * ReadReg(t, op.rs2));
      t.pc = op.next_pc;
      break;
    case exec::FusedKind::kDiv: {
      const std::uint64_t divisor = ReadReg(t, op.rs2);
      WriteReg(t, op.rd, divisor == 0 ? 0 : ReadReg(t, op.rs1) / divisor);
      t.pc = op.next_pc;
      break;
    }
    case exec::FusedKind::kMod: {
      const std::uint64_t divisor = ReadReg(t, op.rs2);
      WriteReg(t, op.rd, divisor == 0 ? 0 : ReadReg(t, op.rs1) % divisor);
      t.pc = op.next_pc;
      break;
    }
    case exec::FusedKind::kAnd:
      WriteReg(t, op.rd, ReadReg(t, op.rs1) & ReadReg(t, op.rs2));
      t.pc = op.next_pc;
      break;
    case exec::FusedKind::kOr:
      WriteReg(t, op.rd, ReadReg(t, op.rs1) | ReadReg(t, op.rs2));
      t.pc = op.next_pc;
      break;
    case exec::FusedKind::kXor:
      WriteReg(t, op.rd, ReadReg(t, op.rs1) ^ ReadReg(t, op.rs2));
      t.pc = op.next_pc;
      break;
    case exec::FusedKind::kAddI:
      WriteReg(t, op.rd, ReadReg(t, op.rs1) + static_cast<std::uint64_t>(op.a));
      t.pc = op.next_pc;
      break;
    case exec::FusedKind::kCmpEq:
      WriteReg(t, op.rd, ReadReg(t, op.rs1) == ReadReg(t, op.rs2) ? 1 : 0);
      t.pc = op.next_pc;
      break;
    case exec::FusedKind::kCmpNe:
      WriteReg(t, op.rd, ReadReg(t, op.rs1) != ReadReg(t, op.rs2) ? 1 : 0);
      t.pc = op.next_pc;
      break;
    case exec::FusedKind::kCmpLt:
      WriteReg(t, op.rd, ReadReg(t, op.rs1) < ReadReg(t, op.rs2) ? 1 : 0);
      t.pc = op.next_pc;
      break;
    case exec::FusedKind::kCmpLe:
      WriteReg(t, op.rd, ReadReg(t, op.rs1) <= ReadReg(t, op.rs2) ? 1 : 0);
      t.pc = op.next_pc;
      break;
    case exec::FusedKind::kJmp:
      t.pc = static_cast<ProgramCounter>(op.a);
      next = op.target_op;
      break;
    case exec::FusedKind::kBnz:
      if (ReadReg(t, op.rs1) != 0) {
        t.pc = static_cast<ProgramCounter>(op.a);
        next = op.target_op;
      } else {
        t.pc = op.next_pc;
      }
      break;
    case exec::FusedKind::kBz:
      if (ReadReg(t, op.rs1) == 0) {
        t.pc = static_cast<ProgramCounter>(op.a);
        next = op.target_op;
      } else {
        t.pc = op.next_pc;
      }
      break;
    case exec::FusedKind::kCall:
      t.sp -= 8;
      memory.Write(t.sp, 8, op.next_pc);
      t.pc = static_cast<ProgramCounter>(op.a);
      next = op.target_op;
      ++t.call_depth;
      break;
    case exec::FusedKind::kCallInd: {
      const Addr ea = (op.base == kNoReg ? 0 : ReadReg(t, op.base)) +
                      static_cast<std::uint64_t>(op.a);
      const ProgramCounter target = memory.Read(ea, 8);
      t.sp -= 8;
      memory.Write(t.sp, 8, op.next_pc);
      t.pc = target;
      ++t.call_depth;
      next = trans.OpIndexOfPc(target);
      break;
    }
    case exec::FusedKind::kRet:
      t.pc = memory.Read(t.sp, 8);
      t.sp += 8;
      if (t.call_depth > 0) {
        --t.call_depth;
      }
      next = trans.OpIndexOfPc(t.pc);
      break;
    case exec::FusedKind::kPush:
      t.sp -= 8;
      memory.Write(t.sp, 8, ReadReg(t, op.rs1));
      t.pc = op.next_pc;
      break;
    case exec::FusedKind::kPushM: {
      const Addr ea = (op.base == kNoReg ? 0 : ReadReg(t, op.base)) +
                      static_cast<std::uint64_t>(op.a);
      const std::uint64_t value = memory.Read(ea, op.size);
      t.sp -= 8;
      memory.Write(t.sp, 8, value);
      t.pc = op.next_pc;
      break;
    }
    case exec::FusedKind::kPop:
      WriteReg(t, op.rd, memory.Read(t.sp, 8));
      t.sp += 8;
      t.pc = op.next_pc;
      break;
    case exec::FusedKind::kBarrier:
      break;  // unreachable: callers test for barriers before executing
  }
  return next;
}

}  // namespace

std::uint64_t Machine::RunTranslated(Cycles max_cycles, CoreId entry_core) {
  // Access-level sinks (the HB oracle, --trace-events=access) need every
  // instruction's access list: mandatory per-instruction deoptimization.
  if ((trace_.hub().mask() & kAccessEventKinds) != 0) {
    return 0;
  }
  const exec::BlockTranslation& trans = image_->blocks;
  const exec::TransOp* const ops = trans.ops();
  const Cycles ucost = config_.costs.user_instruction;
  constexpr std::uint32_t kNoOp = exec::BlockTranslation::kNoOp;
  if (block_cursors_.size() != cores_.size()) {
    block_cursors_.assign(cores_.size(), kNoOp);
    block_verdicts_.assign(cores_.size(), BlockVerdict{});
  } else {
    std::fill(block_cursors_.begin(), block_cursors_.end(), kNoOp);
  }

  // The hoisted watchpoint filter, memoized per core: one check-free verdict
  // per (block, register generation, invalidation epoch) instead of a
  // per-access scan; non-check-free blocks fall back to the per-op
  // conservative test. True means the op must go to the outer ExecuteOne,
  // which redoes the access with exact Match and trap delivery
  // (MayTouchArmed is a superset of Match, so a fused-executed op provably
  // traps nothing).
  const auto may_trap = [&](CoreId core, Core& c, const exec::TransOp& op,
                            const ThreadContext& t) {
    BlockVerdict& v = block_verdicts_[core];
    const std::uint64_t gen = c.debug_regs.generation();
    if (v.block != op.block || v.generation != gen || v.epoch != block_epoch_) {
      v.block = op.block;
      v.generation = gen;
      v.epoch = block_epoch_;
      v.check_free = trans.BlockCheckFree(op.block, c.debug_regs);
    }
    return !v.check_free && MayTouchArmed(op, t, c.debug_regs);
  };

  // Two-core lockstep eligibility. Within one RunTranslated call nothing can
  // enter the kernel (syscalls, traps, idle steps and timer expiries all
  // bail first), so the debug registers, the thread<->core assignment and
  // the timed-wait set are run-constants. With the one-cycle instruction
  // cost, two busy cores at equal clocks provably alternate c0,c1,c0,c1
  // (the min-clock pick with ties to the lowest id), which lets the chunk
  // below execute op *pairs* under a precomputed budget instead of paying
  // the scheduler checks per op.
  const bool lockstep = cores_.size() == 2 && ucost == 1;

  std::uint64_t steps = 0;

  // Run has already committed to one instruction of `entry_core`'s thread:
  // the pick, the timer wake and the cycle-cap check all happened *before*
  // its Reschedule charged any context-switch cost, and ExecuteOne would
  // run without re-deriving anything — even if that charge pushed this
  // core's clock past another's. Execute exactly that one op here (or hand
  // the whole call back for the generic path), then invalidate the cached
  // pick: it may be arbitrarily stale relative to the post-charge clocks,
  // and the loop below depends on the pick being the true (clock, id)
  // minimum.
  {
    Core& c = cores_[entry_core];
    if (c.current == kInvalidThread) {
      return 0;
    }
    ThreadContext& t = *threads_[c.current];
    if (t.state != ThreadState::kRunnable || c.quantum_left == 0) {
      return 0;
    }
    const std::uint32_t cur = trans.OpIndexOfPc(t.pc);
    if (cur == kNoOp) {
      return 0;  // thread-exit PC or invalid PC: generic handling
    }
    const exec::TransOp& op = ops[cur];
    if (op.kind == exec::FusedKind::kBarrier ||
        (hooks_ != nullptr && c.debug_regs.any_armed() && may_trap(entry_core, c, op, t))) {
      return 0;
    }
    now_ = c.clock;
    executing_core_ = entry_core;
    block_cursors_[entry_core] = ExecFusedOp(ops, cur, t, memory_, trans);
    c.clock += ucost;
    t.cpu_cycles += ucost;
    c.quantum_left -= std::min(ucost, c.quantum_left);
    ++t.instructions;
    ++instructions_executed_;
    ++steps;
    min_core_valid_ = false;
  }

  while (true) {
    if (live_count_ == 0) {
      return steps;
    }
    if (lockstep) {
      Core& c0 = cores_[0];
      Core& c1 = cores_[1];
      if (c0.clock == c1.clock && c0.clock < max_cycles &&
          c0.current != kInvalidThread && c1.current != kInvalidThread &&
          c0.quantum_left != 0 && c1.quantum_left != 0) {
        ThreadContext& t0 = *threads_[c0.current];
        ThreadContext& t1 = *threads_[c1.current];
        if (t0.state == ThreadState::kRunnable && t1.state == ThreadState::kRunnable) {
          // Budget: pairs start at clock T and advance both cores by one
          // cycle, so the pair starting at T may run iff T is short of the
          // quanta, the cycle cap and the earliest timer deadline — the
          // general iteration below re-derives the exact bail for whichever
          // limit ended the chunk.
          Cycles pairs = std::min(c0.quantum_left, c1.quantum_left);
          pairs = std::min(pairs, max_cycles - c0.clock);
          const Cycles deadline = EarliestDeadline();
          if (deadline != ~Cycles{0}) {
            pairs = deadline > c0.clock ? std::min(pairs, deadline - c0.clock) : 0;
          }
          std::uint32_t cur0 = block_cursors_[0];
          if (cur0 == kNoOp) {
            cur0 = trans.OpIndexOfPc(t0.pc);
          }
          std::uint32_t cur1 = block_cursors_[1];
          if (cur1 == kNoOp) {
            cur1 = trans.OpIndexOfPc(t1.pc);
          }
          if (pairs != 0 && cur0 != kNoOp && cur1 != kNoOp) {
            const bool armed0 = hooks_ != nullptr && c0.debug_regs.any_armed();
            const bool armed1 = hooks_ != nullptr && c1.debug_regs.any_armed();
            // Per-op accounting (clocks, quanta, instruction counts) is
            // batched to the chunk exit: nothing inside the loop reads it,
            // and no hook can fire that would observe it mid-chunk. The
            // check-free verdict is likewise cached per *block run* in
            // locals — the debug registers cannot change inside the chunk,
            // so a verdict holds until control moves to another block.
            std::uint64_t done0 = 0;
            std::uint64_t done1 = 0;
            std::uint32_t blk0 = ~std::uint32_t{0};
            std::uint32_t blk1 = ~std::uint32_t{0};
            bool free0 = false;
            bool free1 = false;
            while (pairs != 0) {
              const exec::TransOp& o0 = ops[cur0];
              if (o0.kind == exec::FusedKind::kBarrier) {
                break;  // clocks stay tied; the general pick lands on c0
              }
              if (armed0) {
                if (o0.block != blk0) {
                  blk0 = o0.block;
                  free0 = trans.BlockCheckFree(blk0, c0.debug_regs);
                }
                if (!free0 && MayTouchArmed(o0, t0, c0.debug_regs)) {
                  break;
                }
              }
              cur0 = ExecFusedOp(ops, cur0, t0, memory_, trans);
              ++done0;
              const exec::TransOp& o1 = ops[cur1];
              if (o1.kind == exec::FusedKind::kBarrier) {
                break;  // c1 lags by one cycle now; the general pick is c1
              }
              if (armed1) {
                if (o1.block != blk1) {
                  blk1 = o1.block;
                  free1 = trans.BlockCheckFree(blk1, c1.debug_regs);
                }
                if (!free1 && MayTouchArmed(o1, t1, c1.debug_regs)) {
                  break;
                }
              }
              cur1 = ExecFusedOp(ops, cur1, t1, memory_, trans);
              ++done1;
              if (cur0 == kNoOp || cur1 == kNoOp) {
                break;  // dynamic target left translated code: re-derive by PC
              }
              --pairs;
            }
            if (done0 != 0) {
              c0.clock += done0;
              t0.cpu_cycles += done0;
              c0.quantum_left -= done0;
              t0.instructions += done0;
              c1.clock += done1;
              t1.cpu_cycles += done1;
              c1.quantum_left -= done1;
              t1.instructions += done1;
              steps += done0 + done1;
              instructions_executed_ += done0 + done1;
              // The core whose op ran last is the one the hooks last saw.
              executing_core_ = done1 == done0 ? 1 : 0;
              block_cursors_[0] = cur0;
              block_cursors_[1] = cur1;
              min_core_valid_ = false;  // clocks advanced without per-op fixup
              continue;  // the general iteration handles whatever ended the chunk
            }
          }
        }
      }
    }
    const CoreId core = MinClockCore();
    Core& c = cores_[core];
    if (c.clock >= max_cycles) {
      return steps;
    }
    now_ = c.clock;
    if (EarliestDeadline() <= now_) {
      return steps;  // a timer expired: the outer loop wakes it
    }
    if (c.current == kInvalidThread) {
      if (!ready_.empty()) {
        // A real scheduling decision (possibly over stale queue entries):
        // the outer loop's Reschedule purges and picks exactly as always.
        return steps;
      }
      if (IdleCoreStep(core) == IdleOutcome::kDeadlock) {
        return steps;  // no state was changed; the outer loop re-derives it
      }
      // The idle step may have scheduled a thread or run hooks; the cursor
      // no longer matches the core's thread.
      block_cursors_[core] = kNoOp;
      continue;
    }
    ThreadContext& t = *threads_[c.current];
    if (t.state != ThreadState::kRunnable || c.quantum_left == 0) {
      return steps;  // preemption or a blocked thread: outer Reschedule
    }
    std::uint32_t cur = block_cursors_[core];
    if (cur == kNoOp) {
      cur = trans.OpIndexOfPc(t.pc);
      if (cur == kNoOp) {
        return steps;  // thread-exit PC or invalid PC: outer handling
      }
    }
    const exec::TransOp& op = ops[cur];
    if (op.kind == exec::FusedKind::kBarrier) {
      block_cursors_[core] = kNoOp;
      return steps;
    }
    if (hooks_ != nullptr && c.debug_regs.any_armed() && may_trap(core, c, op, t)) {
      block_cursors_[core] = kNoOp;
      return steps;
    }

    // Solo streak: with the discrete-event (clock, id) pick, `core` keeps
    // being chosen while its clock is below every other core's (at equal
    // clocks the lower id wins) — common right after another core paid a
    // kernel-crossing cost. All scheduler checks above were just validated
    // and cannot change while this core runs user ops, so a whole budget of
    // ops needs only the per-op barrier/trap/translation tests. With a
    // non-unit instruction cost the budget degenerates to a single op
    // (exactly the pre-streak behavior); real cost models use 1.
    Cycles budget = 1;
    bool chase = false;
    if (ucost == 1) {
      budget = std::min(c.quantum_left, max_cycles - c.clock);
      const Cycles deadline = EarliestDeadline();
      if (deadline != ~Cycles{0}) {
        budget = std::min(budget, deadline - c.clock);  // deadline > now_ held above
      }
      for (CoreId j = 0; j < cores_.size(); ++j) {
        if (j == core) {
          continue;
        }
        // Idle companion (two-core machines only): with no runnable thread
        // waiting and an idle kernel entry proven to be a no-op, every pick
        // of core j is a pure clock jump chasing this core — IdleCoreStep
        // jumps j to max(clock_j + 1, our clock), capped by the deadline we
        // already bounded the budget with. Eliding those jumps can't be
        // observed (no hooks fire, ready_ can't grow while this core runs
        // user ops), so don't let j's clock cap the streak; the closed-form
        // final clock is restored below.
        if (cores_.size() == 2 && cores_[j].current == kInvalidThread && ready_.empty() &&
            (hooks_ == nullptr || hooks_->IdleSyncIsNoOp(j))) {
          chase = true;
          continue;
        }
        // Ops run at clocks T, T+1, ...; op k is still the pick while
        // T+k <= clock_j for higher-id cores (we win ties) and T+k < clock_j
        // for lower-id ones.
        budget = std::min(budget, cores_[j].clock - c.clock + (j > core ? 1 : 0));
      }
    }
    // Hooks fired from *outside* any instruction (WakeExpiredTimers'
    // OnSuspensionTimeout) read executing_core() as "the core last seen
    // running"; the kernel syncs register generations against it. Keep it
    // as current as ExecuteOne would.
    executing_core_ = core;
    const bool armed = hooks_ != nullptr && c.debug_regs.any_armed();
    std::uint32_t cu = cur;
    std::uint64_t done = 0;
    std::uint32_t blk = ~std::uint32_t{0};
    bool blk_free = false;
    while (true) {
      cu = ExecFusedOp(ops, cu, t, memory_, trans);
      ++done;
      if (--budget == 0 || cu == kNoOp) {
        break;
      }
      const exec::TransOp& nxt = ops[cu];
      if (nxt.kind == exec::FusedKind::kBarrier) {
        break;
      }
      if (armed) {
        // Same per-block-run verdict caching as the lockstep chunk: the
        // registers are streak-constants.
        if (nxt.block != blk) {
          blk = nxt.block;
          blk_free = trans.BlockCheckFree(blk, c.debug_regs);
        }
        if (!blk_free && MayTouchArmed(nxt, t, c.debug_regs)) {
          break;
        }
      }
    }
    // Identical accounting to ExecuteOne with no hooks fired, batched to the
    // streak exit: fused ops cannot ChargeExtra, so the cost is exactly one
    // user instruction each, and nothing inside the streak reads the
    // counters. The budget kept ucost * done within the quantum.
    c.clock += ucost * done;
    t.cpu_cycles += ucost * done;
    c.quantum_left -= std::min(ucost * done, c.quantum_left);
    t.instructions += done;
    block_cursors_[core] = cu;
    steps += done;
    instructions_executed_ += done;
    if (chase) {
      Core& o = cores_[core == 0 ? 1 : 0];
      if (c.clock > o.clock) {
        // Replay the companion's elided chase steps in closed form. With the
        // companion on the higher id, the generic order is "our op at the
        // tie, then its jump to equal" — its jump is the last elided action,
        // so it is also the core the hooks last saw. On the lower id its
        // order is "jump past us, then our op": at this exit state the
        // generic interleaving has it tied with us, and its one pending jump
        // is exactly the idle iteration the loop above will now run for real.
        o.clock = c.clock;
        if ((core == 0 ? 1u : 0u) > core) {
          executing_core_ = core == 0 ? 1 : 0;
        }
      }
      min_core_valid_ = false;
    } else {
      FixMinCoreAfterAdvance(core);
    }
  }
}

}  // namespace kivati
