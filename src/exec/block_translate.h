// Basic-block translation of a Program (docs/performance.md).
//
// The second-generation execution engine stops re-dispatching the fat
// Instruction struct per step: a one-time leader analysis over the program
// discovers basic blocks, each instruction is predecoded into a compact
// TransOp specialized by addressing mode, and static branch/call targets are
// resolved to op indices so the hot loop chains ops without touching the
// PC->index table. Per-block *static footprints* (the accesses performed
// through absolute operands) let the interpreter prove at translation time
// that a whole block can never touch an armed watchpoint range — such
// blocks run check-free, hoisting the per-access watchpoint filter to the
// block boundary (the check-hoisting idea of "Fast Atomicity Monitoring";
// the translation tier itself follows Valgrind's ucode playbook).
//
// The translation is derived once per ProgramImage, so sweep, fuzz and
// shrink workers sharing an image share the translation. It is purely
// structural: PCs, instruction indices and per-instruction costs are
// preserved exactly, which is what keeps block runs byte-identical to the
// PR 5 fast loop and the reference loop (block_translate_test), and keeps
// `kivati annotate`/`analyze` line attribution untouched.
#ifndef KIVATI_EXEC_BLOCK_TRANSLATE_H_
#define KIVATI_EXEC_BLOCK_TRANSLATE_H_

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "hw/debug_registers.h"
#include "isa/program.h"

namespace kivati {
namespace exec {

// Predecoded operation kinds. kBarrier marks instructions the block engine
// never executes itself — syscalls, annotations (kABegin/kAEnd/kAClear),
// kHalt and kRepMovs — because they enter the kernel, fire hooks, or need
// the full access-list machinery; the engine bails out and the generic loop
// executes them. Barriers always form singleton blocks.
enum class FusedKind : std::uint8_t {
  kBarrier,
  kNop,
  kLoadImm,
  kMov,
  kLoad,
  kStore,
  kMovM,
  kXchg,
  kAdd,
  kSub,
  kMul,
  kDiv,
  kMod,
  kAnd,
  kOr,
  kXor,
  kAddI,
  kCmpEq,
  kCmpNe,
  kCmpLt,
  kCmpLe,
  kJmp,
  kBnz,
  kBz,
  kCall,
  kCallInd,
  kRet,
  kPush,
  kPushM,
  kPop,
};

// One predecoded instruction (40 bytes vs the fat Instruction's ~100).
// Field use by kind:
//   a          immediate (kLoadImm/kAddI), primary memory offset, or the
//              static branch/call target PC (kJmp/kBnz/kBz/kCall)
//   b          secondary memory offset (kMovM source)
//   base/base2 memory operand base registers; kNoReg = absolute operand
//   target_op  op index of the static branch/call target (kNoOp if the
//              target PC is not an instruction start)
//   next_pc    PC of the next sequential instruction
struct TransOp {
  FusedKind kind = FusedKind::kBarrier;
  RegId rd = 0;
  RegId rs1 = 0;
  RegId rs2 = 0;
  std::uint8_t size = 8;
  RegId base = kNoReg;
  RegId base2 = kNoReg;
  std::uint32_t block = 0;
  std::uint32_t target_op = 0;
  ProgramCounter next_pc = 0;
  std::int64_t a = 0;
  std::int64_t b = 0;
};

// One access from a block's static footprint: performed through an absolute
// memory operand, so its address is known at translation time.
struct StaticAccess {
  Addr addr = 0;
  std::uint32_t size = 0;
};

struct TransBlock {
  std::uint32_t first_op = 0;
  std::uint32_t end_op = 0;  // one past the last op
  // Range into BlockTranslation::static_footprint().
  std::uint32_t fp_first = 0;
  std::uint32_t fp_end = 0;
  // Hull of the static footprint, [hull_lo, hull_hi); empty when no static
  // accesses.
  Addr hull_lo = 0;
  Addr hull_hi = 0;
  // True when *every* memory access any op of this block can perform is
  // static (no register-indirect or stack-pointer operands): the footprint
  // is then complete and a disjointness proof against the armed watchpoints
  // covers the whole block.
  bool all_static = false;
  bool has_mem = false;  // any op accesses memory at all
};

class BlockTranslation {
 public:
  static constexpr std::uint32_t kNoOp = 0xffffffffu;

  explicit BlockTranslation(const Program& program);

  std::size_t num_ops() const { return ops_.size(); }
  const TransOp* ops() const { return ops_.data(); }
  const TransOp& op(std::uint32_t index) const { return ops_[index]; }

  std::size_t num_blocks() const { return blocks_.size(); }
  const TransBlock& block(std::uint32_t id) const { return blocks_[id]; }
  const std::vector<StaticAccess>& static_footprint() const { return footprint_; }

  // Op index of the instruction whose first byte is at `pc`; kNoOp when the
  // PC is invalid (mid-instruction, past text_end, kThreadExitPc).
  std::uint32_t OpIndexOfPc(ProgramCounter pc) const {
    if (pc >= pc_to_op_.size()) {
      return kNoOp;
    }
    return pc_to_op_[static_cast<std::size_t>(pc)];
  }

  // The hoisting proof: true when no enabled watchpoint in `regs` can
  // overlap any access the block performs, so every op of the block may
  // execute without per-access checks. Exact for all_static blocks (the
  // footprint is complete); conservatively false otherwise. Callers memoize
  // the verdict keyed on the register file's generation() plus the
  // machine's invalidation epoch (Machine::InvalidateBlockChecks).
  bool BlockCheckFree(std::uint32_t block_id, const DebugRegisterFile& regs) const;

 private:
  std::vector<TransOp> ops_;          // one per instruction index
  std::vector<TransBlock> blocks_;
  std::vector<StaticAccess> footprint_;
  std::vector<std::uint32_t> pc_to_op_;  // dense, sized text_end
};

}  // namespace exec
}  // namespace kivati

#endif  // KIVATI_EXEC_BLOCK_TRANSLATE_H_
