#include "exec/block_translate.h"

#include <algorithm>

namespace kivati {
namespace exec {
namespace {

FusedKind KindOf(Opcode op) {
  switch (op) {
    case Opcode::kNop: return FusedKind::kNop;
    case Opcode::kLoadImm: return FusedKind::kLoadImm;
    case Opcode::kMov: return FusedKind::kMov;
    case Opcode::kLoad: return FusedKind::kLoad;
    case Opcode::kStore: return FusedKind::kStore;
    case Opcode::kMovM: return FusedKind::kMovM;
    case Opcode::kXchg: return FusedKind::kXchg;
    case Opcode::kAdd: return FusedKind::kAdd;
    case Opcode::kSub: return FusedKind::kSub;
    case Opcode::kMul: return FusedKind::kMul;
    case Opcode::kDiv: return FusedKind::kDiv;
    case Opcode::kMod: return FusedKind::kMod;
    case Opcode::kAnd: return FusedKind::kAnd;
    case Opcode::kOr: return FusedKind::kOr;
    case Opcode::kXor: return FusedKind::kXor;
    case Opcode::kAddI: return FusedKind::kAddI;
    case Opcode::kCmpEq: return FusedKind::kCmpEq;
    case Opcode::kCmpNe: return FusedKind::kCmpNe;
    case Opcode::kCmpLt: return FusedKind::kCmpLt;
    case Opcode::kCmpLe: return FusedKind::kCmpLe;
    case Opcode::kJmp: return FusedKind::kJmp;
    case Opcode::kBnz: return FusedKind::kBnz;
    case Opcode::kBz: return FusedKind::kBz;
    case Opcode::kCall: return FusedKind::kCall;
    case Opcode::kCallInd: return FusedKind::kCallInd;
    case Opcode::kRet: return FusedKind::kRet;
    case Opcode::kPush: return FusedKind::kPush;
    case Opcode::kPushM: return FusedKind::kPushM;
    case Opcode::kPop: return FusedKind::kPop;
    // Kernel entries, annotations, thread termination and the multi-word
    // kRepMovs stay with the generic loop: they fire hooks, enter the
    // kernel, or need the unbounded access-list machinery.
    case Opcode::kHalt:
    case Opcode::kRepMovs:
    case Opcode::kSyscall:
    case Opcode::kABegin:
    case Opcode::kAEnd:
    case Opcode::kAClear:
      return FusedKind::kBarrier;
  }
  return FusedKind::kBarrier;
}

bool IsControlTransfer(FusedKind kind) {
  switch (kind) {
    case FusedKind::kJmp:
    case FusedKind::kBnz:
    case FusedKind::kBz:
    case FusedKind::kCall:
    case FusedKind::kCallInd:
    case FusedKind::kRet:
      return true;
    default:
      return false;
  }
}

bool HasStaticTarget(FusedKind kind) {
  return kind == FusedKind::kJmp || kind == FusedKind::kBnz || kind == FusedKind::kBz ||
         kind == FusedKind::kCall;
}

// One memory access an op can perform, as known at translation time:
// static (base == kNoReg, address = offset) or dynamic otherwise.
struct AccessShape {
  RegId base = kNoReg;
  std::int64_t offset = 0;
  std::uint32_t size = 0;
};

// Appends the access shapes of `op` to `out` (mirrors
// Machine::CollectAccesses; stack traffic uses base = kRegSp). Returns
// false for kinds whose accesses cannot be enumerated here (barriers).
bool AccessShapes(const TransOp& op, std::vector<AccessShape>& out) {
  switch (op.kind) {
    case FusedKind::kLoad:
    case FusedKind::kStore:
    case FusedKind::kXchg:
      out.push_back({op.base, op.a, op.size});
      return true;
    case FusedKind::kMovM:
      out.push_back({op.base2, op.b, op.size});
      out.push_back({op.base, op.a, op.size});
      return true;
    case FusedKind::kPushM:
      out.push_back({op.base, op.a, op.size});
      out.push_back({kRegSp, 0, 8});
      return true;
    case FusedKind::kCallInd:
      out.push_back({op.base, op.a, 8});
      out.push_back({kRegSp, 0, 8});
      return true;
    case FusedKind::kPush:
    case FusedKind::kCall:
    case FusedKind::kPop:
    case FusedKind::kRet:
      out.push_back({kRegSp, 0, 8});
      return true;
    case FusedKind::kBarrier:
      return false;
    default:
      return true;  // no memory access
  }
}

}  // namespace

BlockTranslation::BlockTranslation(const Program& program) {
  const std::size_t n = program.size();
  ops_.resize(n);
  pc_to_op_.assign(static_cast<std::size_t>(program.text_end()), kNoOp);

  // Predecode every instruction into its compact op.
  for (std::size_t i = 0; i < n; ++i) {
    const Instruction& instr = program.At(i);
    TransOp& op = ops_[i];
    op.kind = KindOf(instr.op);
    op.rd = instr.rd;
    op.rs1 = instr.rs1;
    op.rs2 = instr.rs2;
    op.size = static_cast<std::uint8_t>(instr.size);
    op.next_pc = program.PcOf(i) + program.LengthAt(i);
    op.target_op = kNoOp;
    switch (op.kind) {
      case FusedKind::kLoadImm:
      case FusedKind::kAddI:
        op.a = instr.imm;
        break;
      case FusedKind::kJmp:
      case FusedKind::kBnz:
      case FusedKind::kBz:
      case FusedKind::kCall:
        op.a = instr.target;
        break;
      case FusedKind::kMovM:
        op.base = instr.mem.base;
        op.a = instr.mem.offset;
        op.base2 = instr.mem2.base;
        op.b = instr.mem2.offset;
        break;
      default:
        op.base = instr.mem.base;
        op.a = instr.mem.offset;
        break;
    }
    pc_to_op_[static_cast<std::size_t>(program.PcOf(i))] = static_cast<std::uint32_t>(i);
  }

  // Leader analysis: block boundaries fall at function entries, static
  // branch/call targets, every instruction following a control transfer,
  // and around barriers (which form singleton blocks).
  std::vector<bool> leader(n, false);
  if (n > 0) {
    leader[0] = true;
  }
  for (const FunctionInfo& f : program.functions()) {
    if (f.first_index < n) {
      leader[f.first_index] = true;
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    const FusedKind kind = ops_[i].kind;
    if (HasStaticTarget(kind)) {
      const std::uint32_t target = OpIndexOfPc(static_cast<ProgramCounter>(ops_[i].a));
      ops_[i].target_op = target;
      if (target != kNoOp) {
        leader[target] = true;
      }
    }
    if ((IsControlTransfer(kind) || kind == FusedKind::kBarrier) && i + 1 < n) {
      leader[i + 1] = true;
    }
    if (kind == FusedKind::kBarrier) {
      leader[i] = true;
    }
  }

  // Form blocks and derive each block's static footprint.
  std::vector<AccessShape> shapes;
  for (std::size_t i = 0; i < n;) {
    std::size_t end = i + 1;
    while (end < n && !leader[end]) {
      ++end;
    }
    TransBlock block;
    block.first_op = static_cast<std::uint32_t>(i);
    block.end_op = static_cast<std::uint32_t>(end);
    block.fp_first = static_cast<std::uint32_t>(footprint_.size());
    block.all_static = true;
    block.hull_lo = ~Addr{0};
    block.hull_hi = 0;
    for (std::size_t j = i; j < end; ++j) {
      ops_[j].block = static_cast<std::uint32_t>(blocks_.size());
      shapes.clear();
      if (!AccessShapes(ops_[j], shapes)) {
        // Barrier: accesses unknown at translation time.
        block.all_static = false;
        block.has_mem = true;
        continue;
      }
      for (const AccessShape& shape : shapes) {
        block.has_mem = true;
        if (shape.base != kNoReg) {
          block.all_static = false;
          continue;
        }
        const Addr addr = static_cast<Addr>(shape.offset);
        footprint_.push_back({addr, shape.size});
        block.hull_lo = std::min(block.hull_lo, addr);
        block.hull_hi = std::max(block.hull_hi, addr + shape.size);
      }
    }
    block.fp_end = static_cast<std::uint32_t>(footprint_.size());
    if (block.fp_first == block.fp_end) {
      block.hull_lo = 0;
      block.hull_hi = 0;
    }
    blocks_.push_back(block);
    i = end;
  }
}

bool BlockTranslation::BlockCheckFree(std::uint32_t block_id,
                                      const DebugRegisterFile& regs) const {
  if (!regs.any_armed()) {
    return true;
  }
  const TransBlock& b = blocks_[block_id];
  if (!b.has_mem) {
    return true;
  }
  if (!b.all_static) {
    // Dynamic addresses (register-indirect or stack traffic): the footprint
    // is incomplete, so no whole-block proof exists — the engine falls back
    // to per-access MayMatch filtering inside this block.
    return false;
  }
  for (std::uint32_t i = b.fp_first; i < b.fp_end; ++i) {
    const StaticAccess& access = footprint_[i];
    if (regs.AnyEnabledOverlap(access.addr, access.addr + access.size)) {
      return false;
    }
  }
  return true;
}

}  // namespace exec
}  // namespace kivati
