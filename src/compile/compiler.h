// Compiler driver: mini-C source -> annotated simulated binary.
//
// Pipeline: parse -> lower to MIR -> assign global addresses -> run the
// annotator (LSV + atomic regions, paper §3.1) -> generate ISA code with
// begin_atomic / end_atomic / clear_ar annotations and the optimization-3
// replica stores -> build the Program (whose RollbackTable the machine
// derives, standing in for the paper's binary pre-processing pass).
#ifndef KIVATI_COMPILE_COMPILER_H_
#define KIVATI_COMPILE_COMPILER_H_

#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "analysis/atomic_regions.h"
#include "analysis/conflict.h"
#include "analysis/correlation.h"
#include "isa/program.h"
#include "lang/ast.h"
#include "mem/address_space.h"

namespace kivati {

struct CompileOptions {
  // Insert Kivati annotations. False produces the "vanilla" binary used as
  // the experiments' baseline.
  bool annotate = true;
  // Emit the shared-page replica store after AR-opening/closing local
  // writes (needed by optimization 3; one extra user instruction each).
  bool emit_replica_stores = true;
  // Annotator precision extensions (paper §3.5/§6 future work).
  AnnotateOptions annotator;
  // Whole-module conflict analysis: thread roots and whether ARs it proves
  // unviolable are pruned at codegen (conflict.prune; --no-prune disables).
  ConflictOptions conflict;
  // Correlated-variable inference + multi-variable region fusion
  // (analysis/correlation.h; --no-correlate disables). When the pass fuses
  // anything, the conflict analysis is re-run so synthesized and extended
  // ARs carry verdicts.
  bool correlate = true;
  CorrelationOptions correlation;
};

struct CompiledProgram {
  Program program;
  std::unordered_map<std::string, Addr> global_addrs;
  // (address, value) pairs to write before running (global initializers).
  std::vector<std::pair<Addr, std::uint64_t>> initializers;
  // AR ids over synchronization variables (feed optimization 4's whitelist).
  std::unordered_set<ArId> sync_ars;
  // Addresses of the trusted lock globals (analysis/lockset.h: used only via
  // lock()/unlock()). Detector backends (src/detect) seed their lock model
  // from these so the first acquire is already classified as a sync access.
  std::unordered_set<Addr> lock_addrs;
  // Debug info for every AR, indexed by (id - 1).
  std::vector<ArDebugInfo> ar_infos;
  std::size_t num_ars = 0;
  // Verdicts from the whole-module conflict analysis (empty when
  // options.annotate was false).
  ConflictReport conflict;
  // Correlated-set inference result (empty when options.annotate or
  // options.correlate was false). Self-contained: names are resolved, so
  // it can be formatted without the MIR module.
  CorrelationReport correlation;

  Addr GlobalAddr(const std::string& name) const { return global_addrs.at(name); }
  // Writes all initializers into `memory` (use as a Workload::init).
  void InitMemory(AddressSpace& memory) const;
};

CompiledProgram Compile(const TranslationUnit& unit, const CompileOptions& options = {});
CompiledProgram CompileSource(const std::string& source, const CompileOptions& options = {});

}  // namespace kivati

#endif  // KIVATI_COMPILE_COMPILER_H_
