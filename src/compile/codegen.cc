#include "compile/codegen.h"

#include <cassert>
#include <vector>

#include "kernel/config.h"

namespace kivati {
namespace {

// Scratch registers used by the stack-slot code generator. Locals live in
// stack slots; registers only carry values within one MIR op, so calls need
// no save/restore discipline.
constexpr RegId kS0 = 8;
constexpr RegId kS1 = 9;

Opcode OpcodeFor(BinOp op) {
  switch (op) {
    case BinOp::kAdd: return Opcode::kAdd;
    case BinOp::kSub: return Opcode::kSub;
    case BinOp::kMul: return Opcode::kMul;
    case BinOp::kDiv: return Opcode::kDiv;
    case BinOp::kMod: return Opcode::kMod;
    case BinOp::kAnd: return Opcode::kAnd;
    case BinOp::kOr: return Opcode::kOr;
    case BinOp::kXor: return Opcode::kXor;
    case BinOp::kEq: return Opcode::kCmpEq;
    case BinOp::kNe: return Opcode::kCmpNe;
    case BinOp::kLt: return Opcode::kCmpLt;
    case BinOp::kLe: return Opcode::kCmpLe;
    case BinOp::kGt: return Opcode::kCmpLt;  // swapped operands
    case BinOp::kGe: return Opcode::kCmpLe;  // swapped operands
  }
  return Opcode::kAdd;
}

bool SwapsOperands(BinOp op) { return op == BinOp::kGt || op == BinOp::kGe; }

class FunctionCodegen {
 public:
  FunctionCodegen(ProgramBuilder& builder, const MirModule& module, const MirFunction& function,
                  const FunctionAnnotations* annotations, bool emit_replica_stores,
                  const std::unordered_set<ArId>* pruned)
      : b_(builder),
        module_(module),
        f_(function),
        annotations_(annotations),
        emit_replica_(emit_replica_stores),
        pruned_(pruned) {}

  void Run() {
    LayoutFrame();
    IndexAnnotations();

    b_.BeginFunction(f_.name);
    // Prologue: allocate the frame, home the parameters.
    if (frame_size_ > 0) {
      b_.AddI(kRegSp, kRegSp, -static_cast<std::int64_t>(frame_size_));
    }
    for (unsigned i = 0; i < f_.num_params; ++i) {
      b_.Store(Slot(static_cast<int>(i)), static_cast<RegId>(i));
    }

    op_labels_.resize(f_.ops.size() + 1);
    for (auto& label : op_labels_) {
      label = b_.NewLabel();
    }
    for (std::size_t i = 0; i < f_.ops.size(); ++i) {
      b_.Bind(op_labels_[i]);
      EmitBegins(i);
      EmitOp(i);
      EmitReplicas(i);
      EmitEnds(i);
    }
    // Branches may target one-past-the-end; give them an epilogue.
    b_.Bind(op_labels_[f_.ops.size()]);
    EmitEpilogue();
    b_.EndFunction();
  }

 private:
  void LayoutFrame() {
    slot_off_.resize(f_.locals.size());
    std::int64_t offset = 0;
    for (std::size_t i = 0; i < f_.locals.size(); ++i) {
      slot_off_[i] = offset;
      const std::int64_t words =
          f_.locals[i].array_size > 0 ? f_.locals[i].array_size : 1;
      offset += 8 * words;
    }
    frame_size_ = static_cast<std::uint64_t>(offset);
  }

  void IndexAnnotations() {
    begins_at_.assign(f_.ops.size(), {});
    ends_at_.assign(f_.ops.size(), {});
    replicas_at_.assign(f_.ops.size(), {});
    if (annotations_ == nullptr) {
      return;
    }
    for (const FunctionAr& ar : annotations_->ars) {
      if (pruned_ != nullptr && pruned_->contains(ar.id)) {
        continue;  // statically proven unviolable: drop all its annotations
      }
      begins_at_[static_cast<std::size_t>(ar.first_op)].push_back(&ar);
      if (emit_replica_ && ar.needs_replica) {
        replicas_at_[static_cast<std::size_t>(ar.first_op)].push_back(&ar);
      }
      for (const auto& [op, type] : ar.ends) {
        ends_at_[static_cast<std::size_t>(op)].emplace_back(ar.id, type);
        // A write-type second access also refreshes the AR's shared-page
        // value: a remote access trapped between this write and the
        // end_atomic must be rolled back to the post-write value. Fused
        // multi-variable regions may end after *another* member's access;
        // that op's value belongs to the other variable, so only ops that
        // touch this AR's own variable (or calls, which reload it) refresh.
        if (emit_replica_ && type == AccessType::kWrite && EndAccessesOwnVar(ar, op)) {
          replicas_at_[static_cast<std::size_t>(op)].push_back(&ar);
        }
      }
    }
  }

  // Whether the end op at `op_index` performs an access to `ar`'s own
  // variable. Single-variable AR ends always do (pairs are same-variable);
  // a call end stands for a callee access to the variable.
  bool EndAccessesOwnVar(const FunctionAr& ar, int op_index) const {
    const MirOp& op = f_.ops[static_cast<std::size_t>(op_index)];
    if (op.kind == MirOp::Kind::kCall) {
      return true;
    }
    const auto access = SharedAccessOf(op);
    return access.has_value() && access->base.space == ar.var.space &&
           access->base.index == ar.var.index;
  }

  MemOperand Slot(int local) const {
    return MemOperand::Indirect(kRegSp, slot_off_[static_cast<std::size_t>(local)]);
  }

  Addr GlobalAddr(int global) const {
    return module_.globals[static_cast<std::size_t>(global)].addr;
  }

  // Computes the address of arr[index_local] into `dst`.
  void EmitElementAddress(RegId dst, const VarRef& array, int index_local) {
    b_.Load(dst, Slot(index_local));
    b_.LoadImm(kS1, 8);
    b_.Alu(Opcode::kMul, dst, dst, kS1);
    if (array.space == VarRef::Space::kGlobal) {
      b_.LoadImm(kS1, static_cast<std::int64_t>(GlobalAddr(array.index)));
      b_.Alu(Opcode::kAdd, dst, dst, kS1);
    } else {
      b_.AddI(kS1, kRegSp, slot_off_[static_cast<std::size_t>(array.index)]);
      b_.Alu(Opcode::kAdd, dst, dst, kS1);
    }
  }

  // Materializes the begin_atomic for `ar` (paper §3.1: five arguments —
  // AR id, shared variable address, size, remote watch type, first access
  // type — the address possibly computed at run time).
  void EmitBegins(std::size_t op_index) {
    for (const FunctionAr* ar : begins_at_[op_index]) {
      const MirOp& op = f_.ops[static_cast<std::size_t>(ar->first_op)];
      MemOperand address;
      switch (op.kind) {
        case MirOp::Kind::kLoadGlobal:
        case MirOp::Kind::kStoreGlobal:
        case MirOp::Kind::kLock:
        case MirOp::Kind::kUnlock:
          address = MemOperand::Absolute(GlobalAddr(op.global));
          break;
        case MirOp::Kind::kLoadIndex:
        case MirOp::Kind::kStoreIndex:
          EmitElementAddress(kS0, op.array, op.a);
          address = MemOperand::Indirect(kS0);
          break;
        case MirOp::Kind::kLoadPtr:
        case MirOp::Kind::kStorePtr:
          b_.Load(kS0, Slot(op.a));
          address = MemOperand::Indirect(kS0);
          break;
        case MirOp::Kind::kLoadLocalMem:
        case MirOp::Kind::kStoreLocalMem:
          address = MemOperand::Indirect(kRegSp,
                                         slot_off_[static_cast<std::size_t>(op.local_mem)]);
          break;
        case MirOp::Kind::kCall:
          // Inter-procedural AR starting at a call site: the annotator only
          // creates these for globals the callee may access.
          assert(ar->var.space == VarRef::Space::kGlobal);
          address = MemOperand::Absolute(GlobalAddr(ar->var.index));
          break;
        default:
          assert(false && "AR first op is not a shared access");
          continue;
      }
      // kABegin carries the joint mask to the kernel, which installs it at
      // region entry and fires Machine::InvalidateBlockChecks so the block
      // engine's hoisted check-free verdicts never outlive a mask change.
      // Annotations are also translation barriers (exec/block_translate.h):
      // every AR boundary hands control back to the generic loop.
      b_.BeginAtomic(ar->id, address, 8, ar->watch, ar->first_type, ar->joint_types);
    }
  }

  // Shared-page replica of the value just written by a local write that
  // opens or closes an AR (optimization 3). Reads the value from the
  // private slot, never from the shared variable, so it adds no watched
  // access.
  void EmitReplicas(std::size_t op_index) {
    for (const FunctionAr* ar : replicas_at_[op_index]) {
      const MirOp& op = f_.ops[op_index];
      switch (op.kind) {
        case MirOp::Kind::kStoreGlobal:
        case MirOp::Kind::kStoreLocalMem:
          b_.Load(kS0, Slot(op.a));
          break;
        case MirOp::Kind::kStoreIndex:
        case MirOp::Kind::kStorePtr:
          b_.Load(kS0, Slot(op.b));
          break;
        case MirOp::Kind::kLock:
          b_.LoadImm(kS0, 1);
          break;
        case MirOp::Kind::kUnlock:
          b_.LoadImm(kS0, 0);
          break;
        case MirOp::Kind::kCall:
          // The write happened somewhere inside the callee: reload the
          // variable itself (a local access — suppressed for the owner
          // under optimization 3, so it adds no trap).
          b_.Load(kS0, MemOperand::Absolute(GlobalAddr(ar->var.index)));
          break;
        default:
          continue;
      }
      b_.Store(MemOperand::Absolute(SharedPageSlot(ar->id)), kS0);
    }
  }

  void EmitEnds(std::size_t op_index) {
    for (const auto& [ar, type] : ends_at_[op_index]) {
      b_.EndAtomic(ar, type);
    }
  }

  void EmitEpilogue() {
    if (annotations_ != nullptr) {
      b_.ClearAr();
    }
    if (frame_size_ > 0) {
      b_.AddI(kRegSp, kRegSp, static_cast<std::int64_t>(frame_size_));
    }
    b_.Ret();
  }

  void EmitOp(std::size_t index) {
    const MirOp& op = f_.ops[index];
    switch (op.kind) {
      case MirOp::Kind::kConst:
        b_.LoadImm(kS0, op.imm);
        b_.Store(Slot(op.dst), kS0);
        break;
      case MirOp::Kind::kCopy:
      case MirOp::Kind::kStoreLocalMem: {
        const int dst = op.kind == MirOp::Kind::kCopy ? op.dst : op.local_mem;
        b_.Load(kS0, Slot(op.a));
        b_.Store(Slot(dst), kS0);
        break;
      }
      case MirOp::Kind::kLoadLocalMem:
        b_.Load(kS0, Slot(op.local_mem));
        b_.Store(Slot(op.dst), kS0);
        break;
      case MirOp::Kind::kBin: {
        const int lhs = SwapsOperands(op.bin_op) ? op.b : op.a;
        const int rhs = SwapsOperands(op.bin_op) ? op.a : op.b;
        b_.Load(kS0, Slot(lhs));
        b_.Load(kS1, Slot(rhs));
        b_.Alu(OpcodeFor(op.bin_op), kS0, kS0, kS1);
        b_.Store(Slot(op.dst), kS0);
        break;
      }
      case MirOp::Kind::kLoadGlobal:
        b_.Load(kS0, MemOperand::Absolute(GlobalAddr(op.global)));
        b_.Store(Slot(op.dst), kS0);
        break;
      case MirOp::Kind::kStoreGlobal:
        b_.Load(kS0, Slot(op.a));
        b_.Store(MemOperand::Absolute(GlobalAddr(op.global)), kS0);
        break;
      case MirOp::Kind::kLoadIndex:
        EmitElementAddress(kS0, op.array, op.a);
        b_.Load(kS1, MemOperand::Indirect(kS0));
        b_.Store(Slot(op.dst), kS1);
        break;
      case MirOp::Kind::kStoreIndex:
        EmitElementAddress(kS0, op.array, op.a);
        b_.Load(kS1, Slot(op.b));
        b_.Store(MemOperand::Indirect(kS0), kS1);
        break;
      case MirOp::Kind::kLoadPtr:
        b_.Load(kS0, Slot(op.a));
        b_.Load(kS1, MemOperand::Indirect(kS0));
        b_.Store(Slot(op.dst), kS1);
        break;
      case MirOp::Kind::kStorePtr:
        b_.Load(kS0, Slot(op.a));
        b_.Load(kS1, Slot(op.b));
        b_.Store(MemOperand::Indirect(kS0), kS1);
        break;
      case MirOp::Kind::kAddrGlobal:
        b_.LoadImm(kS0, static_cast<std::int64_t>(GlobalAddr(op.global)));
        b_.Store(Slot(op.dst), kS0);
        break;
      case MirOp::Kind::kAddrLocal:
        b_.AddI(kS0, kRegSp, slot_off_[static_cast<std::size_t>(op.local_mem)]);
        b_.Store(Slot(op.dst), kS0);
        break;
      case MirOp::Kind::kAddrIndex:
        EmitElementAddress(kS0, op.array, op.a);
        b_.Store(Slot(op.dst), kS0);
        break;
      case MirOp::Kind::kCall: {
        for (std::size_t j = 0; j < op.args.size(); ++j) {
          b_.Load(static_cast<RegId>(j), Slot(op.args[j]));
        }
        b_.Call(op.callee);
        if (op.dst >= 0) {
          b_.Store(Slot(op.dst), 0);
        }
        break;
      }
      case MirOp::Kind::kSpawn:
        b_.LoadFunctionAddress(0, op.callee);
        if (!op.args.empty()) {
          b_.Load(1, Slot(op.args[0]));
        } else {
          b_.LoadImm(1, 0);
        }
        b_.SyscallOp(Syscall::kSpawn);
        break;
      case MirOp::Kind::kLock: {
        // Test-and-set spin lock with a short sleep backoff between
        // attempts (as futex-style locks do); the lock word accesses are
        // real shared accesses the annotator sees.
        const auto retry = b_.NewLabel();
        const auto done = b_.NewLabel();
        b_.Bind(retry);
        b_.LoadImm(kS0, 1);
        b_.Xchg(kS1, MemOperand::Absolute(GlobalAddr(op.global)), kS0);
        b_.Bz(kS1, done);
        b_.LoadImm(0, 200);
        b_.SyscallOp(Syscall::kSleep);
        b_.Jmp(retry);
        b_.Bind(done);
        break;
      }
      case MirOp::Kind::kUnlock:
        b_.LoadImm(kS0, 0);
        b_.Store(MemOperand::Absolute(GlobalAddr(op.global)), kS0);
        break;
      case MirOp::Kind::kSleep:
        b_.Load(0, Slot(op.a));
        b_.SyscallOp(Syscall::kSleep);
        break;
      case MirOp::Kind::kIo:
        b_.Load(0, Slot(op.a));
        b_.SyscallOp(Syscall::kIo);
        break;
      case MirOp::Kind::kYield:
        b_.SyscallOp(Syscall::kYield);
        break;
      case MirOp::Kind::kMark:
        b_.Load(0, Slot(op.a));
        b_.Load(1, Slot(op.b));
        b_.SyscallOp(Syscall::kMark);
        break;
      case MirOp::Kind::kNow:
        b_.SyscallOp(Syscall::kNow);
        b_.Store(Slot(op.dst), 0);
        break;
      case MirOp::Kind::kExitSys:
        b_.Load(0, Slot(op.a));
        b_.SyscallOp(Syscall::kExit);
        break;
      case MirOp::Kind::kBr:
        b_.Load(kS0, Slot(op.a));
        b_.Bnz(kS0, op_labels_[static_cast<std::size_t>(op.target)]);
        if (static_cast<std::size_t>(op.target2) != index + 1) {
          b_.Jmp(op_labels_[static_cast<std::size_t>(op.target2)]);
        }
        break;
      case MirOp::Kind::kJmp:
        if (static_cast<std::size_t>(op.target) != index + 1) {
          b_.Jmp(op_labels_[static_cast<std::size_t>(op.target)]);
        }
        break;
      case MirOp::Kind::kRet:
        if (op.a >= 0) {
          b_.Load(0, Slot(op.a));
        }
        EmitEpilogue();
        break;
    }
  }

  ProgramBuilder& b_;
  const MirModule& module_;
  const MirFunction& f_;
  const FunctionAnnotations* annotations_;
  const bool emit_replica_;
  const std::unordered_set<ArId>* pruned_;

  std::vector<std::int64_t> slot_off_;
  std::uint64_t frame_size_ = 0;
  std::vector<ProgramBuilder::Label> op_labels_;
  std::vector<std::vector<const FunctionAr*>> begins_at_;
  std::vector<std::vector<std::pair<ArId, AccessType>>> ends_at_;
  std::vector<std::vector<const FunctionAr*>> replicas_at_;
};

}  // namespace

Program GenerateCode(const MirModule& module, const ModuleAnnotations* annotations,
                     bool emit_replica_stores, const std::unordered_set<ArId>* pruned) {
  ProgramBuilder builder;
  for (std::size_t i = 0; i < module.functions.size(); ++i) {
    const FunctionAnnotations* fa =
        annotations != nullptr ? &annotations->functions[i] : nullptr;
    FunctionCodegen(builder, module, module.functions[i], fa, emit_replica_stores, pruned).Run();
  }
  return builder.Build();
}

}  // namespace kivati
