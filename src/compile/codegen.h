// MIR -> ISA code generation.
#ifndef KIVATI_COMPILE_CODEGEN_H_
#define KIVATI_COMPILE_CODEGEN_H_

#include "analysis/atomic_regions.h"
#include "analysis/mir.h"
#include "isa/program.h"

namespace kivati {

// Generates code for `module`. `annotations` may be null (vanilla build).
// `emit_replica_stores` controls the optimization-3 shared-page stores.
Program GenerateCode(const MirModule& module, const ModuleAnnotations* annotations,
                     bool emit_replica_stores);

}  // namespace kivati

#endif  // KIVATI_COMPILE_CODEGEN_H_
