// MIR -> ISA code generation.
#ifndef KIVATI_COMPILE_CODEGEN_H_
#define KIVATI_COMPILE_CODEGEN_H_

#include <unordered_set>

#include "analysis/atomic_regions.h"
#include "analysis/mir.h"
#include "isa/program.h"

namespace kivati {

// Generates code for `module`. `annotations` may be null (vanilla build).
// `emit_replica_stores` controls the optimization-3 shared-page stores.
// ARs in `pruned` (may be null) emit no begin/end_atomic or replica stores —
// the conflict analysis proved they cannot be violated. clear_ar emission is
// unchanged: it closes whatever AR the thread has open, including a caller's.
Program GenerateCode(const MirModule& module, const ModuleAnnotations* annotations,
                     bool emit_replica_stores,
                     const std::unordered_set<ArId>* pruned = nullptr);

}  // namespace kivati

#endif  // KIVATI_COMPILE_CODEGEN_H_
