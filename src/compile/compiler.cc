#include "compile/compiler.h"

#include "analysis/lockset.h"
#include "analysis/mir_builder.h"
#include "compile/codegen.h"
#include "lang/parser.h"

namespace kivati {

void CompiledProgram::InitMemory(AddressSpace& memory) const {
  for (const auto& [addr, value] : initializers) {
    memory.Write(addr, 8, value);
  }
}

CompiledProgram Compile(const TranslationUnit& unit, const CompileOptions& options) {
  MirModule module = BuildMir(unit);

  // Lay out globals in the data segment: scalars and arrays, 8 bytes per
  // element, in declaration order (deterministic addresses for tests).
  Addr next = kDataBase;
  for (MirGlobal& global : module.globals) {
    global.addr = next;
    const std::int64_t words = global.array_size > 0 ? global.array_size : 1;
    next += 8 * static_cast<Addr>(words);
  }

  ModuleAnnotations annotations;
  ConflictReport conflict;
  CorrelationReport correlation;
  if (options.annotate) {
    annotations = Annotate(module, options.annotator);
    conflict = AnalyzeConflicts(module, annotations, options.conflict);
    if (options.correlate) {
      correlation = CorrelateAndFuse(module, annotations, conflict, options.correlation);
      if (correlation.changed) {
        // Fusion extended host ARs and appended synthesized ones; the
        // conflict verdicts (and prune set) must reflect the new shapes.
        conflict = AnalyzeConflicts(module, annotations, options.conflict);
      }
    }
  }

  CompiledProgram out;
  out.program = GenerateCode(module, options.annotate ? &annotations : nullptr,
                             options.emit_replica_stores,
                             options.annotate ? &conflict.pruned : nullptr);
  for (const MirGlobal& global : module.globals) {
    out.global_addrs.emplace(global.name, global.addr);
    if (global.array_size == 0 && global.init_value != 0) {
      out.initializers.emplace_back(global.addr,
                                    static_cast<std::uint64_t>(global.init_value));
    }
  }
  for (const int global : ComputeLockSummaries(module).trusted_locks) {
    out.lock_addrs.insert(module.globals[static_cast<std::size_t>(global)].addr);
  }
  out.sync_ars = std::move(annotations.sync_ars);
  out.ar_infos = std::move(annotations.infos);
  out.num_ars = out.ar_infos.size();
  out.conflict = std::move(conflict);
  out.correlation = std::move(correlation);
  return out;
}

CompiledProgram CompileSource(const std::string& source, const CompileOptions& options) {
  return Compile(Parse(source), options);
}

}  // namespace kivati
