#include "mem/address_space.h"

#include <cassert>
#include <cstring>

namespace kivati {

AddressSpace::AddressSpace() = default;

std::uint8_t* AddressSpace::ChunkFor(Addr addr) {
  const Addr index = addr >> kChunkBits;
  if (index >= chunks_.size()) {
    chunks_.resize(index + 1);
  }
  auto& chunk = chunks_[index];
  if (chunk.empty()) {
    chunk.assign(kChunkSize, 0);
  }
  return chunk.data();
}

const std::uint8_t* AddressSpace::ChunkForRead(Addr addr) const {
  const Addr index = addr >> kChunkBits;
  if (index >= chunks_.size()) {
    chunks_.resize(index + 1);
  }
  auto& chunk = chunks_[index];
  if (chunk.empty()) {
    chunk.assign(kChunkSize, 0);
  }
  return chunk.data();
}

std::uint64_t AddressSpace::ReadSlow(Addr addr, unsigned size) const {
  assert(size == 1 || size == 2 || size == 4 || size == 8);
  const Addr offset = addr & (kChunkSize - 1);
  std::uint64_t value = 0;
  if (offset + size <= kChunkSize) {
    // Single chunk, but not yet materialized (the inline fast path handles
    // the materialized case): resolve the chunk once instead of per byte.
    const std::uint8_t* chunk = ChunkForRead(addr);
    for (unsigned i = 0; i < size; ++i) {
      value |= static_cast<std::uint64_t>(chunk[offset + i]) << (8 * i);
    }
    return value;
  }
  // Accesses may straddle a chunk boundary; go byte-by-byte, which is cheap
  // at the simulator's scale and always correct.
  for (unsigned i = 0; i < size; ++i) {
    const Addr a = addr + i;
    const std::uint8_t byte = ChunkForRead(a)[a & (kChunkSize - 1)];
    value |= static_cast<std::uint64_t>(byte) << (8 * i);
  }
  return value;
}

void AddressSpace::WriteSlow(Addr addr, unsigned size, std::uint64_t value) {
  assert(size == 1 || size == 2 || size == 4 || size == 8);
  const Addr offset = addr & (kChunkSize - 1);
  if (offset + size <= kChunkSize) {
    std::uint8_t* chunk = ChunkFor(addr);
    for (unsigned i = 0; i < size; ++i) {
      chunk[offset + i] = static_cast<std::uint8_t>(value >> (8 * i));
    }
    return;
  }
  for (unsigned i = 0; i < size; ++i) {
    const Addr a = addr + i;
    ChunkFor(a)[a & (kChunkSize - 1)] = static_cast<std::uint8_t>(value >> (8 * i));
  }
}

Addr AddressSpace::AllocateData(Addr bytes, Addr align) {
  assert(align != 0 && (align & (align - 1)) == 0);
  data_break_ = (data_break_ + align - 1) & ~(align - 1);
  const Addr base = data_break_;
  data_break_ += bytes;
  return base;
}

}  // namespace kivati
