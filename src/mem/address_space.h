// Simulated flat byte-addressed memory.
//
// All simulated threads of one machine share a single AddressSpace (the
// workloads are threads of one process, as in the paper). The space is
// segmented by convention:
//
//   [kDataBase, ...)    globals and heap allocations (bump-allocated)
//   [kStackBase, ...)   per-thread stacks, fixed size, growing down
//   [kSharedPageBase,)  the page shared between the user-space Kivati
//                       library and the kernel component (optimization 3)
//
// Accesses are little-endian and support the watchpoint-relevant widths
// 1, 2, 4 and 8 bytes.
#ifndef KIVATI_MEM_ADDRESS_SPACE_H_
#define KIVATI_MEM_ADDRESS_SPACE_H_

#include <cstdint>
#include <cstring>
#include <vector>

#include "common/types.h"

namespace kivati {

inline constexpr Addr kDataBase = 0x10000;
inline constexpr Addr kStackBase = 0x4000000;
inline constexpr Addr kStackSize = 0x10000;  // 64 KiB per simulated thread
inline constexpr Addr kSharedPageBase = 0x8000000;
inline constexpr Addr kSharedPageSize = 0x1000;

class AddressSpace {
 public:
  AddressSpace();

  // Reads `size` bytes (1, 2, 4 or 8) at `addr`, zero-extended to 64 bits.
  // The already-materialized single-chunk case — the overwhelmingly common
  // one on the interpreter's per-access path — is inline; first-touch
  // materialization and chunk-straddling accesses take the out-of-line
  // slow path.
  std::uint64_t Read(Addr addr, unsigned size) const {
    const Addr index = addr >> kChunkBits;
    const Addr offset = addr & (kChunkSize - 1);
    if (index < chunks_.size() && offset + size <= kChunkSize) {
      const auto& chunk = chunks_[index];
      if (!chunk.empty()) {
#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_LITTLE_ENDIAN__
        // Width-specialized memcpy: each case compiles to a single load
        // (the interpreter passes `size` at run time, so the portable
        // byte-assembly loop below would really loop).
        const std::uint8_t* p = chunk.data() + offset;
        switch (size) {
          case 8: {
            std::uint64_t v;
            std::memcpy(&v, p, 8);
            return v;
          }
          case 4: {
            std::uint32_t v;
            std::memcpy(&v, p, 4);
            return v;
          }
          case 2: {
            std::uint16_t v;
            std::memcpy(&v, p, 2);
            return v;
          }
          case 1:
            return *p;
          default:
            break;
        }
#endif
        std::uint64_t value = 0;
        // Little-endian byte assembly, independent of host byte order.
        for (unsigned i = 0; i < size; ++i) {
          value |= static_cast<std::uint64_t>(chunk[offset + i]) << (8 * i);
        }
        return value;
      }
    }
    return ReadSlow(addr, size);
  }

  // Writes the low `size` bytes of `value` at `addr`.
  void Write(Addr addr, unsigned size, std::uint64_t value) {
    const Addr index = addr >> kChunkBits;
    const Addr offset = addr & (kChunkSize - 1);
    if (index < chunks_.size() && offset + size <= kChunkSize) {
      auto& chunk = chunks_[index];
      if (!chunk.empty()) {
#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_LITTLE_ENDIAN__
        std::uint8_t* p = chunk.data() + offset;
        switch (size) {
          case 8:
            std::memcpy(p, &value, 8);
            return;
          case 4: {
            const std::uint32_t v = static_cast<std::uint32_t>(value);
            std::memcpy(p, &v, 4);
            return;
          }
          case 2: {
            const std::uint16_t v = static_cast<std::uint16_t>(value);
            std::memcpy(p, &v, 2);
            return;
          }
          case 1:
            *p = static_cast<std::uint8_t>(value);
            return;
          default:
            break;
        }
#endif
        for (unsigned i = 0; i < size; ++i) {
          chunk[offset + i] = static_cast<std::uint8_t>(value >> (8 * i));
        }
        return;
      }
    }
    WriteSlow(addr, size, value);
  }

  // Bump-allocates `bytes` in the data segment, aligned to `align` (a power
  // of two). Returns the base address of the allocation.
  Addr AllocateData(Addr bytes, Addr align = 8);

  // Returns the initial stack pointer (one past the top) for thread `tid`.
  static Addr StackTop(ThreadId tid) { return kStackBase + (tid + 1) * kStackSize; }

  // True if [addr, addr+size) lies inside thread tid's stack region.
  static bool InStack(ThreadId tid, Addr addr) {
    return addr >= kStackBase + tid * kStackSize && addr < StackTop(tid);
  }

  // Current top of the data bump allocator (useful for bounds in tests).
  Addr data_break() const { return data_break_; }

 private:
  // Sparse backing store: fixed-size chunks materialized on first touch.
  static constexpr Addr kChunkBits = 16;
  static constexpr Addr kChunkSize = Addr{1} << kChunkBits;

  std::uint64_t ReadSlow(Addr addr, unsigned size) const;
  void WriteSlow(Addr addr, unsigned size, std::uint64_t value);

  std::uint8_t* ChunkFor(Addr addr);
  const std::uint8_t* ChunkForRead(Addr addr) const;

  mutable std::vector<std::vector<std::uint8_t>> chunks_;
  Addr data_break_ = kDataBase;
};

}  // namespace kivati

#endif  // KIVATI_MEM_ADDRESS_SPACE_H_
