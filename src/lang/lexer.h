// Hand-written lexer for the mini-C frontend.
//
// Supports // line comments and /* block comments */, decimal and hex
// integer literals, and the token set in token.h. Errors throw
// ParseError with line/column info.
#ifndef KIVATI_LANG_LEXER_H_
#define KIVATI_LANG_LEXER_H_

#include <stdexcept>
#include <string>
#include <vector>

#include "lang/token.h"

namespace kivati {

class ParseError : public std::runtime_error {
 public:
  ParseError(const std::string& message, int line, int column);
  int line() const { return line_; }
  int column() const { return column_; }

 private:
  int line_;
  int column_;
};

// Tokenizes `source` fully; the result ends with a kEof token.
std::vector<Token> Lex(const std::string& source);

}  // namespace kivati

#endif  // KIVATI_LANG_LEXER_H_
