// Token definitions for the mini-C frontend.
#ifndef KIVATI_LANG_TOKEN_H_
#define KIVATI_LANG_TOKEN_H_

#include <cstdint>
#include <string>

namespace kivati {

enum class TokenKind {
  kEof,
  kIdentifier,
  kIntLiteral,
  // Keywords.
  kKwInt,
  kKwVoid,
  kKwSync,
  kKwIf,
  kKwElse,
  kKwWhile,
  kKwFor,
  kKwReturn,
  kKwSpawn,
  kKwBreak,
  kKwContinue,
  // Punctuation / operators.
  kLParen,
  kRParen,
  kLBrace,
  kRBrace,
  kLBracket,
  kRBracket,
  kSemicolon,
  kComma,
  kAssign,      // =
  kPlus,
  kMinus,
  kStar,        // multiplication and dereference
  kSlash,       // division
  kPercent,     // remainder
  kAmp,         // bitwise-and and address-of
  kPipe,
  kCaret,
  kEq,          // ==
  kNe,          // !=
  kLt,
  kLe,
  kGt,
  kGe,
};

struct Token {
  TokenKind kind = TokenKind::kEof;
  std::string text;
  std::int64_t int_value = 0;
  int line = 0;
  int column = 0;
};

const char* ToString(TokenKind kind);

}  // namespace kivati

#endif  // KIVATI_LANG_TOKEN_H_
