#include "lang/lexer.h"

#include <cctype>
#include <unordered_map>

namespace kivati {

ParseError::ParseError(const std::string& message, int line, int column)
    : std::runtime_error(message + " (line " + std::to_string(line) + ", column " +
                         std::to_string(column) + ")"),
      line_(line),
      column_(column) {}

const char* ToString(TokenKind kind) {
  switch (kind) {
    case TokenKind::kEof: return "<eof>";
    case TokenKind::kIdentifier: return "identifier";
    case TokenKind::kIntLiteral: return "integer literal";
    case TokenKind::kKwInt: return "'int'";
    case TokenKind::kKwVoid: return "'void'";
    case TokenKind::kKwSync: return "'sync'";
    case TokenKind::kKwIf: return "'if'";
    case TokenKind::kKwElse: return "'else'";
    case TokenKind::kKwWhile: return "'while'";
    case TokenKind::kKwFor: return "'for'";
    case TokenKind::kKwReturn: return "'return'";
    case TokenKind::kKwSpawn: return "'spawn'";
    case TokenKind::kKwBreak: return "'break'";
    case TokenKind::kKwContinue: return "'continue'";
    case TokenKind::kLParen: return "'('";
    case TokenKind::kRParen: return "')'";
    case TokenKind::kLBrace: return "'{'";
    case TokenKind::kRBrace: return "'}'";
    case TokenKind::kLBracket: return "'['";
    case TokenKind::kRBracket: return "']'";
    case TokenKind::kSemicolon: return "';'";
    case TokenKind::kComma: return "','";
    case TokenKind::kAssign: return "'='";
    case TokenKind::kPlus: return "'+'";
    case TokenKind::kMinus: return "'-'";
    case TokenKind::kStar: return "'*'";
    case TokenKind::kSlash: return "'/'";
    case TokenKind::kPercent: return "'%'";
    case TokenKind::kAmp: return "'&'";
    case TokenKind::kPipe: return "'|'";
    case TokenKind::kCaret: return "'^'";
    case TokenKind::kEq: return "'=='";
    case TokenKind::kNe: return "'!='";
    case TokenKind::kLt: return "'<'";
    case TokenKind::kLe: return "'<='";
    case TokenKind::kGt: return "'>'";
    case TokenKind::kGe: return "'>='";
  }
  return "?";
}

namespace {

const std::unordered_map<std::string, TokenKind>& Keywords() {
  static const auto* kMap = new std::unordered_map<std::string, TokenKind>{
      {"int", TokenKind::kKwInt},       {"void", TokenKind::kKwVoid},
      {"sync", TokenKind::kKwSync},     {"if", TokenKind::kKwIf},
      {"else", TokenKind::kKwElse},     {"while", TokenKind::kKwWhile},
      {"for", TokenKind::kKwFor},       {"return", TokenKind::kKwReturn},
      {"spawn", TokenKind::kKwSpawn},   {"break", TokenKind::kKwBreak},
      {"continue", TokenKind::kKwContinue},
  };
  return *kMap;
}

class LexerImpl {
 public:
  explicit LexerImpl(const std::string& source) : source_(source) {}

  std::vector<Token> Run() {
    std::vector<Token> tokens;
    while (true) {
      SkipWhitespaceAndComments();
      Token token = Next();
      const bool eof = token.kind == TokenKind::kEof;
      tokens.push_back(std::move(token));
      if (eof) {
        break;
      }
    }
    return tokens;
  }

 private:
  char Peek(std::size_t ahead = 0) const {
    return pos_ + ahead < source_.size() ? source_[pos_ + ahead] : '\0';
  }

  char Advance() {
    const char c = Peek();
    ++pos_;
    if (c == '\n') {
      ++line_;
      column_ = 1;
    } else {
      ++column_;
    }
    return c;
  }

  void SkipWhitespaceAndComments() {
    while (true) {
      const char c = Peek();
      if (std::isspace(static_cast<unsigned char>(c)) != 0) {
        Advance();
      } else if (c == '/' && Peek(1) == '/') {
        while (Peek() != '\n' && Peek() != '\0') {
          Advance();
        }
      } else if (c == '/' && Peek(1) == '*') {
        Advance();
        Advance();
        while (!(Peek() == '*' && Peek(1) == '/')) {
          if (Peek() == '\0') {
            throw ParseError("unterminated block comment", line_, column_);
          }
          Advance();
        }
        Advance();
        Advance();
      } else {
        return;
      }
    }
  }

  Token Make(TokenKind kind, std::string text) {
    Token token;
    token.kind = kind;
    token.text = std::move(text);
    token.line = line_;
    token.column = column_;
    return token;
  }

  Token Next() {
    const char c = Peek();
    if (c == '\0') {
      return Make(TokenKind::kEof, "");
    }
    if (std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_') {
      return Identifier();
    }
    if (std::isdigit(static_cast<unsigned char>(c)) != 0) {
      return Number();
    }
    return Operator();
  }

  Token Identifier() {
    std::string text;
    while (std::isalnum(static_cast<unsigned char>(Peek())) != 0 || Peek() == '_') {
      text.push_back(Advance());
    }
    const auto it = Keywords().find(text);
    if (it != Keywords().end()) {
      return Make(it->second, std::move(text));
    }
    return Make(TokenKind::kIdentifier, std::move(text));
  }

  Token Number() {
    std::string text;
    int base = 10;
    if (Peek() == '0' && (Peek(1) == 'x' || Peek(1) == 'X')) {
      text.push_back(Advance());
      text.push_back(Advance());
      base = 16;
      while (std::isxdigit(static_cast<unsigned char>(Peek())) != 0) {
        text.push_back(Advance());
      }
    } else {
      while (std::isdigit(static_cast<unsigned char>(Peek())) != 0) {
        text.push_back(Advance());
      }
    }
    Token token = Make(TokenKind::kIntLiteral, text);
    token.int_value = std::stoll(text, nullptr, base);
    return token;
  }

  Token Operator() {
    const int line = line_;
    const int column = column_;
    const char c = Advance();
    auto two = [&](char second, TokenKind with, TokenKind without) {
      if (Peek() == second) {
        Advance();
        return with;
      }
      return without;
    };
    TokenKind kind;
    switch (c) {
      case '(': kind = TokenKind::kLParen; break;
      case ')': kind = TokenKind::kRParen; break;
      case '{': kind = TokenKind::kLBrace; break;
      case '}': kind = TokenKind::kRBrace; break;
      case '[': kind = TokenKind::kLBracket; break;
      case ']': kind = TokenKind::kRBracket; break;
      case ';': kind = TokenKind::kSemicolon; break;
      case ',': kind = TokenKind::kComma; break;
      case '+': kind = TokenKind::kPlus; break;
      case '-': kind = TokenKind::kMinus; break;
      case '*': kind = TokenKind::kStar; break;
      case '/': kind = TokenKind::kSlash; break;
      case '%': kind = TokenKind::kPercent; break;
      case '&': kind = TokenKind::kAmp; break;
      case '|': kind = TokenKind::kPipe; break;
      case '^': kind = TokenKind::kCaret; break;
      case '=': kind = two('=', TokenKind::kEq, TokenKind::kAssign); break;
      case '!':
        if (Peek() == '=') {
          Advance();
          kind = TokenKind::kNe;
        } else {
          throw ParseError("unexpected character '!'", line, column);
        }
        break;
      case '<': kind = two('=', TokenKind::kLe, TokenKind::kLt); break;
      case '>': kind = two('=', TokenKind::kGe, TokenKind::kGt); break;
      default:
        throw ParseError(std::string("unexpected character '") + c + "'", line, column);
    }
    Token token;
    token.kind = kind;
    token.line = line;
    token.column = column;
    return token;
  }

  const std::string& source_;
  std::size_t pos_ = 0;
  int line_ = 1;
  int column_ = 1;
};

}  // namespace

std::vector<Token> Lex(const std::string& source) { return LexerImpl(source).Run(); }

}  // namespace kivati
