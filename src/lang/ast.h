// Abstract syntax tree for the mini-C frontend.
//
// The language is the C subset the Kivati annotator needs to exercise its
// analyses: 64-bit integers, pointers, fixed-size arrays, global variables
// (optionally marked `sync` for synchronization variables), functions,
// if/while/for control flow, address-of/dereference, and thread spawning.
// Built-in functions are ordinary calls with reserved names, resolved during
// lowering: lock(v), unlock(v), sleep(n), io(n), yield(), mark(tag, value),
// now(), exit(n).
#ifndef KIVATI_LANG_AST_H_
#define KIVATI_LANG_AST_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace kivati {

enum class BinOp {
  kAdd,
  kSub,
  kMul,
  kDiv,
  kMod,
  kAnd,
  kOr,
  kXor,
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
};

const char* ToString(BinOp op);

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

struct Expr {
  enum class Kind {
    kIntLit,  // int_value
    kVar,     // name
    kBinary,  // op, lhs, rhs
    kIndex,   // name (array), rhs = index expression
    kCall,    // name (callee), args
    kAddrOf,  // name (variable whose address is taken)
    kDeref,   // lhs = pointer expression
  };

  Kind kind = Kind::kIntLit;
  std::int64_t int_value = 0;
  std::string name;
  BinOp op = BinOp::kAdd;
  ExprPtr lhs;
  ExprPtr rhs;
  std::vector<ExprPtr> args;
  int line = 0;
};

struct Stmt;
using StmtPtr = std::unique_ptr<Stmt>;

struct Stmt {
  enum class Kind {
    kDecl,      // decl_*: local variable declaration
    kAssign,    // target = value
    kIf,        // cond, body, else_body
    kWhile,     // cond, body
    kFor,       // for_init, cond, for_step, body
    kExprStmt,  // value (a call evaluated for effect)
    kReturn,    // value (may be null)
    kSpawn,     // value = call expression to run in a new thread
    kBreak,     // exit the innermost loop
    kContinue,  // jump to the innermost loop's next iteration
  };

  Kind kind = Kind::kDecl;

  // kDecl.
  std::string decl_name;
  bool decl_is_pointer = false;
  std::int64_t decl_array_size = 0;  // 0 means scalar
  ExprPtr decl_init;                 // may be null

  // kAssign: target is kVar, kIndex or kDeref.
  ExprPtr target;
  // kAssign value / kExprStmt call / kReturn value / kSpawn call.
  ExprPtr value;

  // Control flow.
  ExprPtr cond;
  std::vector<StmtPtr> body;
  std::vector<StmtPtr> else_body;
  StmtPtr for_init;
  StmtPtr for_step;

  int line = 0;
};

struct Param {
  std::string name;
  bool is_pointer = false;
};

struct Function {
  std::string name;
  bool returns_value = false;
  bool returns_pointer = false;  // declared `int *f(...)`
  std::vector<Param> params;
  std::vector<StmtPtr> body;
  int line = 0;
};

struct GlobalVar {
  std::string name;
  bool is_pointer = false;
  bool is_sync = false;              // declared with the `sync` qualifier
  std::int64_t array_size = 0;       // 0 means scalar
  std::int64_t init_value = 0;
  int line = 0;
};

struct TranslationUnit {
  std::vector<GlobalVar> globals;
  std::vector<Function> functions;
};

}  // namespace kivati

#endif  // KIVATI_LANG_AST_H_
