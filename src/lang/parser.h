// Recursive-descent parser for the mini-C frontend.
#ifndef KIVATI_LANG_PARSER_H_
#define KIVATI_LANG_PARSER_H_

#include <string>

#include "lang/ast.h"
#include "lang/lexer.h"

namespace kivati {

// Parses a full translation unit. Throws ParseError on malformed input.
TranslationUnit Parse(const std::string& source);

}  // namespace kivati

#endif  // KIVATI_LANG_PARSER_H_
