#include "lang/parser.h"

#include <utility>

namespace kivati {

const char* ToString(BinOp op) {
  switch (op) {
    case BinOp::kAdd: return "+";
    case BinOp::kSub: return "-";
    case BinOp::kMul: return "*";
    case BinOp::kDiv: return "/";
    case BinOp::kMod: return "%";
    case BinOp::kAnd: return "&";
    case BinOp::kOr: return "|";
    case BinOp::kXor: return "^";
    case BinOp::kEq: return "==";
    case BinOp::kNe: return "!=";
    case BinOp::kLt: return "<";
    case BinOp::kLe: return "<=";
    case BinOp::kGt: return ">";
    case BinOp::kGe: return ">=";
  }
  return "?";
}

namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  TranslationUnit Run() {
    TranslationUnit unit;
    while (Peek().kind != TokenKind::kEof) {
      ParseTopLevel(unit);
    }
    return unit;
  }

 private:
  const Token& Peek(std::size_t ahead = 0) const {
    const std::size_t index = std::min(pos_ + ahead, tokens_.size() - 1);
    return tokens_[index];
  }

  const Token& Advance() { return tokens_[std::min(pos_++, tokens_.size() - 1)]; }

  bool Check(TokenKind kind) const { return Peek().kind == kind; }

  bool Match(TokenKind kind) {
    if (Check(kind)) {
      Advance();
      return true;
    }
    return false;
  }

  const Token& Expect(TokenKind kind, const char* context) {
    if (!Check(kind)) {
      throw ParseError(std::string("expected ") + ToString(kind) + " " + context + ", got " +
                           ToString(Peek().kind),
                       Peek().line, Peek().column);
    }
    return Advance();
  }

  [[noreturn]] void Fail(const std::string& message) const {
    throw ParseError(message, Peek().line, Peek().column);
  }

  // --- Top level -------------------------------------------------------------

  void ParseTopLevel(TranslationUnit& unit) {
    const bool is_sync = Match(TokenKind::kKwSync);
    const bool is_void = Check(TokenKind::kKwVoid);
    if (!is_void && !Check(TokenKind::kKwInt)) {
      Fail("expected 'int', 'sync int' or 'void' at top level");
    }
    Advance();  // the type keyword
    bool is_pointer = false;
    while (Match(TokenKind::kStar)) {
      is_pointer = true;
    }
    const Token name = Expect(TokenKind::kIdentifier, "after type");

    if (Check(TokenKind::kLParen)) {
      if (is_sync) {
        Fail("'sync' qualifier is only valid on variables");
      }
      unit.functions.push_back(ParseFunction(name.text, !is_void || is_pointer, is_pointer));
      return;
    }

    if (is_void) {
      Fail("global variables must have type 'int'");
    }
    GlobalVar global;
    global.name = name.text;
    global.is_pointer = is_pointer;
    global.is_sync = is_sync;
    global.line = name.line;
    if (Match(TokenKind::kLBracket)) {
      const Token size = Expect(TokenKind::kIntLiteral, "as array size");
      if (size.int_value <= 0) {
        Fail("array size must be positive");
      }
      global.array_size = size.int_value;
      Expect(TokenKind::kRBracket, "after array size");
    } else if (Match(TokenKind::kAssign)) {
      const Token init = Expect(TokenKind::kIntLiteral, "as global initializer");
      global.init_value = init.int_value;
    }
    Expect(TokenKind::kSemicolon, "after global declaration");
    unit.globals.push_back(std::move(global));
  }

  Function ParseFunction(const std::string& name, bool returns_value, bool returns_pointer) {
    Function function;
    function.name = name;
    function.returns_value = returns_value;
    function.returns_pointer = returns_pointer;
    function.line = Peek().line;
    Expect(TokenKind::kLParen, "after function name");
    if (!Check(TokenKind::kRParen)) {
      do {
        Expect(TokenKind::kKwInt, "as parameter type");
        Param param;
        while (Match(TokenKind::kStar)) {
          param.is_pointer = true;
        }
        param.name = Expect(TokenKind::kIdentifier, "as parameter name").text;
        function.params.push_back(std::move(param));
      } while (Match(TokenKind::kComma));
    }
    Expect(TokenKind::kRParen, "after parameter list");
    Expect(TokenKind::kLBrace, "to open function body");
    function.body = ParseBlock();
    return function;
  }

  // Parses statements until the closing '}' (which is consumed).
  std::vector<StmtPtr> ParseBlock() {
    std::vector<StmtPtr> body;
    while (!Match(TokenKind::kRBrace)) {
      if (Check(TokenKind::kEof)) {
        Fail("unterminated block");
      }
      body.push_back(ParseStatement());
    }
    return body;
  }

  // --- Statements ------------------------------------------------------------

  StmtPtr ParseStatement() {
    switch (Peek().kind) {
      case TokenKind::kKwInt:
        return ParseDecl();
      case TokenKind::kKwIf:
        return ParseIf();
      case TokenKind::kKwWhile:
        return ParseWhile();
      case TokenKind::kKwFor:
        return ParseFor();
      case TokenKind::kKwReturn:
        return ParseReturn();
      case TokenKind::kKwSpawn:
        return ParseSpawn();
      case TokenKind::kKwBreak:
      case TokenKind::kKwContinue: {
        auto stmt = std::make_unique<Stmt>();
        stmt->kind = Peek().kind == TokenKind::kKwBreak ? Stmt::Kind::kBreak
                                                        : Stmt::Kind::kContinue;
        stmt->line = Peek().line;
        Advance();
        Expect(TokenKind::kSemicolon, "after break/continue");
        return stmt;
      }
      default:
        return ParseSimpleStatement(/*expect_semicolon=*/true);
    }
  }

  StmtPtr ParseDecl() {
    auto stmt = std::make_unique<Stmt>();
    stmt->kind = Stmt::Kind::kDecl;
    stmt->line = Peek().line;
    Expect(TokenKind::kKwInt, "in declaration");
    while (Match(TokenKind::kStar)) {
      stmt->decl_is_pointer = true;
    }
    stmt->decl_name = Expect(TokenKind::kIdentifier, "as variable name").text;
    if (Match(TokenKind::kLBracket)) {
      const Token size = Expect(TokenKind::kIntLiteral, "as array size");
      if (size.int_value <= 0) {
        Fail("array size must be positive");
      }
      stmt->decl_array_size = size.int_value;
      Expect(TokenKind::kRBracket, "after array size");
    } else if (Match(TokenKind::kAssign)) {
      stmt->decl_init = ParseExpr();
    }
    Expect(TokenKind::kSemicolon, "after declaration");
    return stmt;
  }

  StmtPtr ParseIf() {
    auto stmt = std::make_unique<Stmt>();
    stmt->kind = Stmt::Kind::kIf;
    stmt->line = Peek().line;
    Expect(TokenKind::kKwIf, "");
    Expect(TokenKind::kLParen, "after 'if'");
    stmt->cond = ParseExpr();
    Expect(TokenKind::kRParen, "after condition");
    Expect(TokenKind::kLBrace, "after 'if (...)' (braces are required)");
    stmt->body = ParseBlock();
    if (Match(TokenKind::kKwElse)) {
      if (Check(TokenKind::kKwIf)) {
        stmt->else_body.push_back(ParseIf());
      } else {
        Expect(TokenKind::kLBrace, "after 'else' (braces are required)");
        stmt->else_body = ParseBlock();
      }
    }
    return stmt;
  }

  StmtPtr ParseWhile() {
    auto stmt = std::make_unique<Stmt>();
    stmt->kind = Stmt::Kind::kWhile;
    stmt->line = Peek().line;
    Expect(TokenKind::kKwWhile, "");
    Expect(TokenKind::kLParen, "after 'while'");
    stmt->cond = ParseExpr();
    Expect(TokenKind::kRParen, "after condition");
    if (Match(TokenKind::kSemicolon)) {
      return stmt;  // empty spin loop: while (cond);
    }
    Expect(TokenKind::kLBrace, "after 'while (...)' (braces are required)");
    stmt->body = ParseBlock();
    return stmt;
  }

  StmtPtr ParseFor() {
    auto stmt = std::make_unique<Stmt>();
    stmt->kind = Stmt::Kind::kFor;
    stmt->line = Peek().line;
    Expect(TokenKind::kKwFor, "");
    Expect(TokenKind::kLParen, "after 'for'");
    if (!Check(TokenKind::kSemicolon)) {
      if (Check(TokenKind::kKwInt)) {
        stmt->for_init = ParseDecl();  // consumes the ';'
      } else {
        stmt->for_init = ParseSimpleStatement(/*expect_semicolon=*/true);
      }
    } else {
      Advance();
    }
    if (!Check(TokenKind::kSemicolon)) {
      stmt->cond = ParseExpr();
    }
    Expect(TokenKind::kSemicolon, "after for condition");
    if (!Check(TokenKind::kRParen)) {
      stmt->for_step = ParseSimpleStatement(/*expect_semicolon=*/false);
    }
    Expect(TokenKind::kRParen, "after for clauses");
    Expect(TokenKind::kLBrace, "after 'for (...)' (braces are required)");
    stmt->body = ParseBlock();
    return stmt;
  }

  StmtPtr ParseReturn() {
    auto stmt = std::make_unique<Stmt>();
    stmt->kind = Stmt::Kind::kReturn;
    stmt->line = Peek().line;
    Expect(TokenKind::kKwReturn, "");
    if (!Check(TokenKind::kSemicolon)) {
      stmt->value = ParseExpr();
    }
    Expect(TokenKind::kSemicolon, "after return");
    return stmt;
  }

  StmtPtr ParseSpawn() {
    auto stmt = std::make_unique<Stmt>();
    stmt->kind = Stmt::Kind::kSpawn;
    stmt->line = Peek().line;
    Expect(TokenKind::kKwSpawn, "");
    ExprPtr call = ParseExpr();
    if (call->kind != Expr::Kind::kCall) {
      Fail("'spawn' must be followed by a function call");
    }
    stmt->value = std::move(call);
    Expect(TokenKind::kSemicolon, "after spawn");
    return stmt;
  }

  // Assignment or expression statement.
  StmtPtr ParseSimpleStatement(bool expect_semicolon) {
    auto stmt = std::make_unique<Stmt>();
    stmt->line = Peek().line;
    ExprPtr first = ParseExpr();
    if (Match(TokenKind::kAssign)) {
      if (first->kind != Expr::Kind::kVar && first->kind != Expr::Kind::kIndex &&
          first->kind != Expr::Kind::kDeref) {
        Fail("assignment target must be a variable, array element or dereference");
      }
      stmt->kind = Stmt::Kind::kAssign;
      stmt->target = std::move(first);
      stmt->value = ParseExpr();
    } else {
      if (first->kind != Expr::Kind::kCall) {
        Fail("expression statement must be a call");
      }
      stmt->kind = Stmt::Kind::kExprStmt;
      stmt->value = std::move(first);
    }
    if (expect_semicolon) {
      Expect(TokenKind::kSemicolon, "after statement");
    }
    return stmt;
  }

  // --- Expressions (precedence climbing) --------------------------------------
  //
  // Levels, loosest first: |  ^  &  ==/!=  </<=/>/>=  +/-  *  unary  primary

  ExprPtr ParseExpr() { return ParseBinary(0); }

  static int PrecedenceOf(TokenKind kind) {
    switch (kind) {
      case TokenKind::kPipe: return 1;
      case TokenKind::kCaret: return 2;
      case TokenKind::kAmp: return 3;
      case TokenKind::kEq:
      case TokenKind::kNe: return 4;
      case TokenKind::kLt:
      case TokenKind::kLe:
      case TokenKind::kGt:
      case TokenKind::kGe: return 5;
      case TokenKind::kPlus:
      case TokenKind::kMinus: return 6;
      case TokenKind::kStar:
      case TokenKind::kSlash:
      case TokenKind::kPercent: return 7;
      default: return -1;
    }
  }

  static BinOp BinOpOf(TokenKind kind) {
    switch (kind) {
      case TokenKind::kPipe: return BinOp::kOr;
      case TokenKind::kCaret: return BinOp::kXor;
      case TokenKind::kAmp: return BinOp::kAnd;
      case TokenKind::kEq: return BinOp::kEq;
      case TokenKind::kNe: return BinOp::kNe;
      case TokenKind::kLt: return BinOp::kLt;
      case TokenKind::kLe: return BinOp::kLe;
      case TokenKind::kGt: return BinOp::kGt;
      case TokenKind::kGe: return BinOp::kGe;
      case TokenKind::kPlus: return BinOp::kAdd;
      case TokenKind::kMinus: return BinOp::kSub;
      case TokenKind::kStar: return BinOp::kMul;
      case TokenKind::kSlash: return BinOp::kDiv;
      case TokenKind::kPercent: return BinOp::kMod;
      default: return BinOp::kAdd;
    }
  }

  ExprPtr ParseBinary(int min_precedence) {
    ExprPtr lhs = ParseUnary();
    while (true) {
      const int precedence = PrecedenceOf(Peek().kind);
      if (precedence < 0 || precedence < min_precedence) {
        return lhs;
      }
      const Token op = Advance();
      ExprPtr rhs = ParseBinary(precedence + 1);
      auto node = std::make_unique<Expr>();
      node->kind = Expr::Kind::kBinary;
      node->op = BinOpOf(op.kind);
      node->lhs = std::move(lhs);
      node->rhs = std::move(rhs);
      node->line = op.line;
      lhs = std::move(node);
    }
  }

  ExprPtr ParseUnary() {
    if (Match(TokenKind::kStar)) {
      auto node = std::make_unique<Expr>();
      node->kind = Expr::Kind::kDeref;
      node->line = Peek().line;
      node->lhs = ParseUnary();
      return node;
    }
    if (Match(TokenKind::kAmp)) {
      auto node = std::make_unique<Expr>();
      node->kind = Expr::Kind::kAddrOf;
      node->line = Peek().line;
      node->name = Expect(TokenKind::kIdentifier, "after '&'").text;
      // &arr[i] takes the address of an element.
      if (Match(TokenKind::kLBracket)) {
        node->rhs = ParseExpr();
        Expect(TokenKind::kRBracket, "after index");
      }
      return node;
    }
    if (Match(TokenKind::kMinus)) {
      // Unary minus: 0 - x.
      auto zero = std::make_unique<Expr>();
      zero->kind = Expr::Kind::kIntLit;
      zero->int_value = 0;
      auto node = std::make_unique<Expr>();
      node->kind = Expr::Kind::kBinary;
      node->op = BinOp::kSub;
      node->lhs = std::move(zero);
      node->rhs = ParseUnary();
      node->line = Peek().line;
      return node;
    }
    return ParsePrimary();
  }

  ExprPtr ParsePrimary() {
    if (Check(TokenKind::kIntLiteral)) {
      const Token token = Advance();
      auto node = std::make_unique<Expr>();
      node->kind = Expr::Kind::kIntLit;
      node->int_value = token.int_value;
      node->line = token.line;
      return node;
    }
    if (Match(TokenKind::kLParen)) {
      ExprPtr inner = ParseExpr();
      Expect(TokenKind::kRParen, "after parenthesized expression");
      return inner;
    }
    if (Check(TokenKind::kIdentifier)) {
      const Token name = Advance();
      if (Match(TokenKind::kLParen)) {
        auto node = std::make_unique<Expr>();
        node->kind = Expr::Kind::kCall;
        node->name = name.text;
        node->line = name.line;
        if (!Check(TokenKind::kRParen)) {
          do {
            node->args.push_back(ParseExpr());
          } while (Match(TokenKind::kComma));
        }
        Expect(TokenKind::kRParen, "after call arguments");
        return node;
      }
      if (Match(TokenKind::kLBracket)) {
        auto node = std::make_unique<Expr>();
        node->kind = Expr::Kind::kIndex;
        node->name = name.text;
        node->line = name.line;
        node->rhs = ParseExpr();
        Expect(TokenKind::kRBracket, "after index");
        return node;
      }
      auto node = std::make_unique<Expr>();
      node->kind = Expr::Kind::kVar;
      node->name = name.text;
      node->line = name.line;
      return node;
    }
    Fail(std::string("unexpected token ") + ToString(Peek().kind) + " in expression");
  }

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
};

}  // namespace

TranslationUnit Parse(const std::string& source) { return Parser(Lex(source)).Run(); }

}  // namespace kivati
