// Whitelist training (paper §4.2, Figure 7).
//
// Runs a workload repeatedly; after each iteration, every AR that suffered a
// violation and is not a known injected bug is a false positive and is added
// to the whitelist for subsequent iterations. The per-iteration false
// positive counts are Figure 7's series; bug-finding mode converges faster
// because its pauses surface more benign violations per run.
#ifndef KIVATI_CORE_TRAINER_H_
#define KIVATI_CORE_TRAINER_H_

#include <vector>

#include "core/engine.h"
#include "core/workload.h"
#include "runtime/whitelist.h"

namespace kivati {

struct TrainingOptions {
  MachineConfig machine;
  KivatiConfig kivati;
  bool whitelist_sync_vars = false;
  int iterations = 8;
  // Vary the scheduler seed per iteration so different interleavings are
  // explored, as successive real runs would.
  bool reseed_each_iteration = true;
};

struct TrainingResult {
  // False positives observed in each iteration (Figure 7's y-axis).
  std::vector<std::size_t> false_positives;
  // The accumulated whitelist after all iterations.
  Whitelist whitelist;
};

TrainingResult Train(const Workload& workload, const TrainingOptions& options);

}  // namespace kivati

#endif  // KIVATI_CORE_TRAINER_H_
