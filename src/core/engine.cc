#include "core/engine.h"

namespace kivati {

Engine::Engine(const Workload& workload, EngineOptions options,
               std::shared_ptr<const ProgramImage> image)
    : default_max_(workload.default_max_cycles),
      machine_(image != nullptr ? std::move(image) : MakeProgramImage(workload.program),
               options.machine) {
  if (options.kivati.has_value()) {
    KivatiConfig config = *options.kivati;
    if (options.whitelist_sync_vars) {
      config.whitelist.insert(workload.sync_var_ars.begin(), workload.sync_var_ars.end());
    }
    runtime_ = std::make_unique<KivatiRuntime>(machine_, config);
  }
  if (workload.init) {
    workload.init(machine_.memory());
  }
  RuntimeStats& stats = machine_.trace().stats();
  stats.ars_annotated = workload.ars_annotated;
  stats.ars_no_remote_writer = workload.ars_no_remote_writer;
  stats.ars_lock_protected = workload.ars_lock_protected;
  stats.ars_watch_required = workload.ars_watch_required;
  stats.ars_pruned = workload.ars_pruned;
  for (const auto& [function, arg] : workload.threads) {
    machine_.SpawnThreadByName(function, arg);
  }
}

RunResult Engine::Run(std::optional<Cycles> max_cycles) {
  return machine_.Run(max_cycles.value_or(default_max_));
}

void Engine::RecordSchedule() {
  sched_ctl_ = std::make_unique<ScheduleController>(machine_.config().seed);
  machine_.set_schedule_controller(sched_ctl_.get());
}

void Engine::ReplaySchedule(std::shared_ptr<const ScheduleTrace> trace, bool strict) {
  replay_trace_ = std::move(trace);
  sched_ctl_ = std::make_unique<ScheduleController>(
      *replay_trace_, strict ? ScheduleController::Mode::kReplayStrict
                             : ScheduleController::Mode::kReplayLoose);
  machine_.set_schedule_controller(sched_ctl_.get());
}

void Engine::GuideSchedule(std::shared_ptr<const GuidedSchedule> guided) {
  strategy_ = MakeStrategy(*guided);
  sched_ctl_ = std::make_unique<ScheduleController>(strategy_.get(), guided->seed);
  machine_.set_schedule_controller(sched_ctl_.get());
}

const ScheduleTrace* Engine::recorded_schedule() const {
  return sched_ctl_ != nullptr && sched_ctl_->recording() ? &sched_ctl_->trace() : nullptr;
}

}  // namespace kivati
