#include "core/trainer.h"

#include <unordered_set>

namespace kivati {

TrainingResult Train(const Workload& workload, const TrainingOptions& options) {
  TrainingResult result;
  Whitelist accumulated(options.kivati.whitelist);

  for (int iteration = 0; iteration < options.iterations; ++iteration) {
    EngineOptions engine_options;
    engine_options.machine = options.machine;
    if (options.reseed_each_iteration) {
      engine_options.machine.seed = options.machine.seed + static_cast<std::uint64_t>(iteration);
    }
    KivatiConfig config = options.kivati;
    config.whitelist = accumulated.ids();
    engine_options.kivati = config;
    engine_options.whitelist_sync_vars = options.whitelist_sync_vars;

    Engine engine(workload, engine_options);
    engine.Run();

    std::unordered_set<ArId> false_positive_ars;
    for (const ViolationRecord& v : engine.trace().violations()) {
      if (!workload.buggy_ars.contains(v.ar_id)) {
        false_positive_ars.insert(v.ar_id);
      }
    }
    result.false_positives.push_back(false_positive_ars.size());
    for (const ArId ar : false_positive_ars) {
      accumulated.Add(ar);
    }
  }
  result.whitelist = accumulated;
  return result;
}

}  // namespace kivati
