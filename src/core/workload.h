// A runnable workload: an annotated program plus everything needed to run it
// (initial threads, memory initialization) and the metadata the experiment
// harnesses need (which ARs are sync variables, which are injected bugs).
#ifndef KIVATI_CORE_WORKLOAD_H_
#define KIVATI_CORE_WORKLOAD_H_

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_set>
#include <utility>
#include <vector>

#include "isa/program.h"
#include "mem/address_space.h"

namespace kivati {

struct Workload {
  std::string name;
  Program program;

  // Threads to start before running: (function name, r0 argument).
  std::vector<std::pair<std::string, std::uint64_t>> threads;

  // Optional initialization of globals before the run.
  std::function<void(AddressSpace&)> init;

  // AR ids the annotator classified as synchronization-variable regions
  // (candidates for the paper's optimization-4 whitelist).
  std::unordered_set<ArId> sync_var_ars;

  // AR ids corresponding to deliberately injected atomicity-violation bugs;
  // violations on these are true positives, everything else counts as a
  // false positive in the paper's §4.2 sense.
  std::unordered_set<ArId> buggy_ars;

  // Cycle budget a harness should give the workload by default.
  Cycles default_max_cycles = 200'000'000;

  // Static annotation census from the compiler's conflict analysis, copied
  // into RuntimeStats so run records carry the per-verdict counts.
  std::uint64_t ars_annotated = 0;
  std::uint64_t ars_no_remote_writer = 0;
  std::uint64_t ars_lock_protected = 0;
  std::uint64_t ars_watch_required = 0;
  std::uint64_t ars_pruned = 0;
};

}  // namespace kivati

#endif  // KIVATI_CORE_WORKLOAD_H_
