// Top-level public API: assemble a machine, optionally protect it with
// Kivati, run a workload, inspect the results.
//
// Typical use:
//
//   kivati::Workload w = kivati::apps::MakeNssWorkload(...);
//   kivati::EngineOptions opts;
//   opts.kivati = kivati::KivatiConfig::PresetFor(
//       kivati::OptimizationPreset::kOptimized, kivati::KivatiMode::kPrevention);
//   kivati::Engine engine(w, opts);
//   auto result = engine.Run();
//   for (const auto& v : engine.trace().violations()) { ... }
#ifndef KIVATI_CORE_ENGINE_H_
#define KIVATI_CORE_ENGINE_H_

#include <memory>
#include <optional>

#include "core/workload.h"
#include "runtime/kivati_runtime.h"
#include "sched/fuzz_strategy.h"
#include "sched/machine.h"

namespace kivati {

struct EngineOptions {
  MachineConfig machine;
  // Absent -> vanilla run (no Kivati protection, annotations are no-ops).
  std::optional<KivatiConfig> kivati;
  // Adds the workload's sync-var ARs to the whitelist (optimization 4 /
  // Table 3's "SyncVars" configuration).
  bool whitelist_sync_vars = false;
};

class Engine {
 public:
  // `image` optionally shares a prebuilt ProgramImage for workload.program
  // (it must have been built from that same program); null builds a private
  // one. Harnesses running the same workload many times — sweep grids, the
  // shrinker's ddmin candidates — pass a shared image to skip the per-run
  // program copy and rollback-table derivation (docs/performance.md).
  Engine(const Workload& workload, EngineOptions options,
         std::shared_ptr<const ProgramImage> image = nullptr);

  // Runs until the workload completes or `max_cycles` (defaulting to the
  // workload's budget) elapses.
  RunResult Run(std::optional<Cycles> max_cycles = std::nullopt);

  Machine& machine() { return machine_; }
  Trace& trace() { return machine_.trace(); }
  const Trace& trace() const { return const_cast<Machine&>(machine_).trace(); }

  // Null for vanilla runs.
  KivatiRuntime* runtime() { return runtime_.get(); }

  // --- Schedule record/replay (docs/replay.md) -----------------------------
  // At most one of the three may be enabled, before the first Run call.
  // Records every scheduling decision; read the trace back after Run.
  void RecordSchedule();
  // Drives the scheduler from `trace`. Strict replay verifies each decision
  // and throws ScheduleDivergenceError on mismatch; loose replay treats the
  // trace as a choice stream (shrunk traces).
  void ReplaySchedule(std::shared_ptr<const ScheduleTrace> trace, bool strict);
  // Drives the scheduler from a fuzz strategy (docs/fuzzing.md) while
  // recording the decisions, so recorded_schedule() is strict-replayable.
  void GuideSchedule(std::shared_ptr<const GuidedSchedule> guided);
  // Null unless RecordSchedule/ReplaySchedule/GuideSchedule was called.
  const ScheduleController* schedule_controller() const { return sched_ctl_.get(); }
  // The recorded trace (null unless recording).
  const ScheduleTrace* recorded_schedule() const;

 private:
  Cycles default_max_;
  Machine machine_;
  std::unique_ptr<KivatiRuntime> runtime_;
  std::unique_ptr<SchedStrategy> strategy_;  // guided mode
  std::unique_ptr<ScheduleController> sched_ctl_;
  std::shared_ptr<const ScheduleTrace> replay_trace_;  // keeps the trace alive
};

}  // namespace kivati

#endif  // KIVATI_CORE_ENGINE_H_
